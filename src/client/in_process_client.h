#ifndef DKB_CLIENT_IN_PROCESS_CLIENT_H_
#define DKB_CLIENT_IN_PROCESS_CLIENT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "client/client.h"
#include "testbed/testbed.h"

namespace dkb {

/// dkb::Client over a Testbed in the same address space: each call is a
/// direct method call plus the QueryOutcome -> QueryResultSet flattening.
/// This is the reference implementation the remote transport is tested
/// against — byte-identical results are the oracle contract.
class InProcessClient : public Client {
 public:
  /// Builds a client owning a fresh testbed.
  static Result<std::unique_ptr<InProcessClient>> Create(
      testbed::TestbedOptions options = testbed::TestbedOptions{});

  /// Wraps a testbed owned by the caller (REPL, benches), which must
  /// outlive the client.
  explicit InProcessClient(testbed::Testbed* testbed) : testbed_(testbed) {}

  Status Consult(const std::string& program_text) override;
  Status AddRule(const std::string& rule_text) override;
  Status RetractRule(const std::string& rule_text) override;
  Status DefineBase(const std::string& pred,
                    const std::vector<DataType>& types) override;
  Status AddFacts(const std::string& pred,
                  const std::vector<Tuple>& rows) override;
  Result<QueryResultSet> Query(const std::string& goal_text,
                               const testbed::QueryOptions& options,
                               uint8_t report_formats) override;
  Result<std::vector<QueryResultSet>> QueryBatch(
      const std::vector<std::string>& goals,
      const testbed::QueryOptions& options, uint8_t report_formats) override;
  Result<StatementId> Prepare(const std::string& goal_text,
                              const testbed::QueryOptions& options) override;
  Result<std::vector<QueryResultSet>> Execute(
      const std::vector<StatementId>& statements) override;
  Result<QueryResultSet> ExecuteSql(const std::string& statement) override;
  Result<UpdateStoredStats> UpdateStoredDkb() override;
  Status ClearWorkspace() override;
  Result<std::vector<std::string>> ListRules() override;
  bool is_remote() const override { return false; }

  /// The underlying testbed, for local-only tool features (session
  /// save/load, recorder configuration) that have no remote equivalent.
  testbed::Testbed* testbed() { return testbed_; }

 private:
  struct PreparedStatement {
    std::string goal;
    testbed::QueryOptions options;
  };

  std::unique_ptr<testbed::Testbed> owned_;  // null when borrowing
  testbed::Testbed* testbed_ = nullptr;
  StatementId next_statement_id_ = 1;
  std::map<StatementId, PreparedStatement> prepared_;
};

}  // namespace dkb

#endif  // DKB_CLIENT_IN_PROCESS_CLIENT_H_
