// dkb_lint — standalone static analyzer for D/KB rule programs.
//
// Reads Datalog program files (rules, facts, ?- queries) and runs the
// km/analysis pipeline over them, printing structured diagnostics:
//
//   $ dkb_lint examples/programs/ancestor.dkb
//   examples/programs/ancestor.dkb: no diagnostics
//
//   $ dkb_lint --json bad.dkb
//   {"source": "bad.dkb", "diagnostics": [{"code": "DKB-W003-dead-rule", ...
//
// Base predicates are taken from the facts in each program file and from an
// optional schema file (--schema) whose clauses declare one base predicate
// each, e.g. `parent(varchar, varchar).`. Queries in the program drive the
// goal-directed passes (dead-rule elimination, adornment dataflow); without
// queries only the goal-independent passes run.
//
// Exit status: 0 clean or warnings only; 1 diagnostics at error severity
// (or any warning with --werror, or any diagnostic with --expect-clean);
// 2 usage or parse failure.

#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "datalog/ast.h"
#include "datalog/parser.h"
#include "km/analysis/analyzer.h"
#include "km/analysis/diagnostics.h"

namespace {

using dkb::km::analysis::AnalysisResult;
using dkb::km::analysis::AnalyzerInput;
using dkb::km::analysis::AnalyzerOptions;
using dkb::km::analysis::Diagnostic;
using dkb::km::analysis::Severity;

struct CliOptions {
  bool json = false;
  bool werror = false;
  bool expect_clean = false;
  bool no_goal = false;
  std::string schema_path;
  std::vector<std::string> files;
};

int Usage() {
  std::cerr
      << "usage: dkb_lint [--json] [--werror] [--expect-clean] [--no-goal]\n"
      << "                [--schema FILE] <program.dkb>...\n";
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

/// Diagnostics for one program file, or nullopt-equivalent via `ok=false`
/// when the file cannot be read or parsed (message holds the reason).
struct FileResult {
  bool ok = false;
  std::string failure;
  std::vector<Diagnostic> diagnostics;
};

std::string DiagnosticKey(const Diagnostic& d) {
  return d.code + "|" + std::to_string(d.rule_line) + "|" + d.predicate +
         "|" + d.message;
}

FileResult LintFile(const std::string& path, const CliOptions& cli,
                    const std::set<std::string>& schema_preds) {
  FileResult out;
  std::string text;
  if (!ReadFile(path, &text)) {
    out.failure = "cannot read " + path;
    return out;
  }
  auto program = dkb::datalog::ParseProgram(text);
  if (!program.ok()) {
    out.failure = "parse error: " + program.status().ToString();
    return out;
  }
  out.ok = true;

  AnalyzerInput input;
  input.rules = program->rules;
  input.base_predicates = schema_preds;
  for (const dkb::datalog::Rule& fact : program->facts) {
    const std::string& pred = fact.head.predicate;
    input.base_predicates.insert(pred);
    input.base_cardinalities[pred] += 1;
  }
  // A predicate defined by rules is derived even if it also has facts
  // (EDB and IDB namespaces are disjoint in the testbed).
  for (const dkb::datalog::Rule& rule : program->rules) {
    input.base_predicates.erase(rule.head.predicate);
    input.base_cardinalities.erase(rule.head.predicate);
  }

  std::vector<dkb::datalog::Atom> goals;
  if (!cli.no_goal) goals = program->queries;

  if (goals.empty()) {
    out.diagnostics = dkb::km::analysis::AnalyzeProgram(input).diagnostics();
    return out;
  }

  // Goal-independent diagnostics once; goal-directed diagnostics per query.
  // A rule is dead only if it is dead under EVERY query of the file;
  // adornment warnings are unioned (any query that cannot pass bindings
  // into a predicate is worth knowing about).
  AnalyzerOptions base_options;
  base_options.prune_dead = false;
  base_options.compute_adornments = false;
  out.diagnostics =
      dkb::km::analysis::AnalyzeProgram(input, base_options).diagnostics();

  std::map<std::string, Diagnostic> dead_candidates;  // key -> diagnostic
  std::set<std::string> seen_keys;
  for (const Diagnostic& d : out.diagnostics) seen_keys.insert(DiagnosticKey(d));
  bool first_goal = true;
  for (const dkb::datalog::Atom& goal : goals) {
    AnalyzerInput goal_input = input;
    goal_input.goal = &goal;
    AnalysisResult result = dkb::km::analysis::AnalyzeProgram(goal_input);
    std::set<std::string> round_dead;
    for (const Diagnostic& d : result.diagnostics()) {
      if (d.code == dkb::km::analysis::kCodeDeadRule) {
        // Keyed on the rule itself, not the goal-specific message.
        std::string key = std::to_string(d.rule_line) + "|" + d.rule_text;
        round_dead.insert(key);
        if (first_goal) dead_candidates.emplace(key, d);
        continue;
      }
      if (seen_keys.insert(DiagnosticKey(d)).second) {
        out.diagnostics.push_back(d);
      }
    }
    if (first_goal) {
      first_goal = false;
    } else {
      for (auto it = dead_candidates.begin(); it != dead_candidates.end();) {
        if (round_dead.count(it->first) == 0) {
          it = dead_candidates.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  for (auto& [key, diagnostic] : dead_candidates) {
    (void)key;
    out.diagnostics.push_back(std::move(diagnostic));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      cli.json = true;
    } else if (arg == "--werror") {
      cli.werror = true;
    } else if (arg == "--expect-clean") {
      cli.expect_clean = true;
    } else if (arg == "--no-goal") {
      cli.no_goal = true;
    } else if (arg == "--schema") {
      if (i + 1 >= argc) return Usage();
      cli.schema_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      return Usage();
    } else {
      cli.files.push_back(arg);
    }
  }
  if (cli.files.empty()) return Usage();

  // Schema file: every clause head declares a base predicate; argument
  // constants name column types (accepted for forward compatibility — the
  // analyzer only needs the predicate names today).
  std::set<std::string> schema_preds;
  if (!cli.schema_path.empty()) {
    std::string text;
    if (!ReadFile(cli.schema_path, &text)) {
      std::cerr << "cannot read schema " << cli.schema_path << "\n";
      return 2;
    }
    auto schema = dkb::datalog::ParseProgram(text);
    if (!schema.ok()) {
      std::cerr << "schema parse error: " << schema.status().ToString()
                << "\n";
      return 2;
    }
    for (const dkb::datalog::Rule& fact : schema->facts) {
      schema_preds.insert(fact.head.predicate);
    }
    for (const dkb::datalog::Rule& rule : schema->rules) {
      schema_preds.insert(rule.head.predicate);
    }
  }

  // Files are analyzed in parallel (each is independent); output is
  // emitted afterwards in argument order so results stay deterministic.
  std::vector<FileResult> results(cli.files.size());
  dkb::GlobalThreadPool().ParallelFor(
      0, cli.files.size(),
      [&](size_t i) { results[i] = LintFile(cli.files[i], cli, schema_preds); },
      /*min_chunk=*/1);

  int exit_code = 0;
  for (size_t i = 0; i < cli.files.size(); ++i) {
    const std::string& path = cli.files[i];
    FileResult& result = results[i];
    if (!result.ok) {
      std::cerr << path << ": " << result.failure << "\n";
      exit_code = 2;
      continue;
    }
    if (cli.json) {
      std::cout << dkb::km::analysis::RenderJson(result.diagnostics, path);
    } else {
      std::cout << dkb::km::analysis::RenderHuman(result.diagnostics, path);
    }
    bool errors = false, warnings = false;
    for (const Diagnostic& d : result.diagnostics) {
      if (d.severity == Severity::kError) errors = true;
      if (d.severity == Severity::kWarning) warnings = true;
    }
    bool fail = errors || (cli.werror && warnings) ||
                (cli.expect_clean && !result.diagnostics.empty());
    if (fail && exit_code == 0) exit_code = 1;
  }
  return exit_code;
}
