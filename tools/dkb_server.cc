// dkb_server: the D/KB testbed behind a TCP socket.
//
//   dkb_server -p 7070                 # listen on 127.0.0.1:7070
//   dkb_server --host 0.0.0.0 -p 7070  # reachable from other machines
//
// Clients: any dkb::RemoteClient — `dkb_repl --connect host:port`,
// `dkb_profile --connect host:port`, `bench_net --connect host:port`.
// Protocol: length-prefixed binary frames (src/net/wire.h); DESIGN.md
// "Network layer & client API" documents the format and lifecycle.

#include <sys/resource.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "net/server.h"
#include "testbed/testbed.h"

namespace {

// Written from the signal handler; sig_atomic_t is the type the standard
// guarantees for that.
volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int /*signum*/) { g_stop = 1; }

/// Raises the open-file soft limit toward `want` so hundreds of concurrent
/// connections do not die on EMFILE (each costs one fd).
void RaiseFdLimit(rlim_t want) {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return;
  if (lim.rlim_cur >= want) return;
  rlimit raised = lim;
  raised.rlim_cur = want < lim.rlim_max ? want : lim.rlim_max;
  setrlimit(RLIMIT_NOFILE, &raised);
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [-p|--port PORT] [--host ADDR] [--shards N]\n"
      "          [--wal-dir DIR] [--no-wal-fsync] [--no-group-commit]\n"
      "          [--slow-request-us N]\n"
      "  -p, --port PORT         listen port (default 7070)\n"
      "      --host ADDR         bind address (default 127.0.0.1)\n"
      "      --shards N          shards per stored table (default 1)\n"
      "      --wal-dir DIR       durable state directory; recovers the\n"
      "                          checkpoint + WAL found there on startup\n"
      "      --no-wal-fsync      ack writes before fsync (faster, unsafe)\n"
      "      --no-group-commit   one fsync per commit instead of batching\n"
      "      --slow-request-us N log requests slower than N us (default "
      "off)\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  dkb::net::ServerOptions options;
  options.port = 7070;
  size_t shards = 1;
  std::string wal_dir;
  bool wal_fsync = true;
  bool group_commit = true;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if ((arg == "-p" || arg == "--port") && i + 1 < argc) {
      options.port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--host" && i + 1 < argc) {
      options.bind_address = argv[++i];
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--wal-dir" && i + 1 < argc) {
      wal_dir = argv[++i];
    } else if (arg == "--no-wal-fsync") {
      wal_fsync = false;
    } else if (arg == "--no-group-commit") {
      group_commit = false;
    } else if (arg == "--slow-request-us" && i + 1 < argc) {
      options.slow_request_us = std::atoll(argv[++i]);
    } else {
      return Usage(argv[0]);
    }
  }

  RaiseFdLimit(8192);

  auto testbed = dkb::testbed::Testbed::Create(dkb::testbed::TestbedOptions{}
                                                   .WithShards(shards)
                                                   .WithWalDir(wal_dir)
                                                   .WithWalFsync(wal_fsync)
                                                   .WithWalGroupCommit(group_commit));
  if (!testbed.ok()) {
    std::fprintf(stderr, "testbed init failed: %s\n",
                 testbed.status().ToString().c_str());
    return 1;
  }
  if (!wal_dir.empty()) {
    auto wal = (*testbed)->WalSnapshot();
    std::printf("dkb_server recovered %s (last_lsn=%llu)\n", wal.path.c_str(),
                static_cast<unsigned long long>(wal.last_lsn));
  }

  dkb::net::Server server;
  dkb::Status started = server.Start(testbed->get(), options);
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("dkb_server listening on %s:%u\n",
              options.bind_address.c_str(), server.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::printf("dkb_server shutting down\n");
  server.Stop();
  return 0;
}
