// dkb_top — live telemetry of a running dkb_server.
//
//   dkb_top 127.0.0.1:7070             # refresh every 2s until Ctrl-C
//   dkb_top --once 127.0.0.1:7070      # one snapshot, then exit (CI)
//   dkb_top --interval 5 HOST:PORT     # custom refresh period (seconds)
//   dkb_top --metrics HOST:PORT        # dump Prometheus exposition, exit
//   dkb_top --check HOST:PORT          # validate the exposition, exit 0/1
//
// Polls the sessionless kStats wire message (src/net/wire.h), so watching
// a server never opens a COW session or perturbs sys.sessions. Each poll
// is its own short-lived connection; a poll failure prints the error and
// keeps polling (the server may be restarting).
//
// Exit status: 0 success; 1 fetch/validate failure (in --once/--metrics/
// --check modes); 2 usage.

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "client/remote_client.h"
#include "common/metrics.h"
#include "net/wire.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int /*signum*/) { g_stop = 1; }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--once] [--interval SECONDS] [--metrics] "
               "[--check] HOST:PORT\n"
               "      --once            print one snapshot and exit\n"
               "      --interval N      refresh period in seconds "
               "(default 2)\n"
               "      --metrics         print the Prometheus text "
               "exposition and exit\n"
               "      --check           fetch + validate the exposition; "
               "exit 0 iff valid\n",
               argv0);
  return 2;
}

/// One sys.metrics-shaped row: histograms show count/p50/p99/max, counters
/// and gauges just the value.
void PrintSample(const dkb::metrics::MetricSample& s) {
  if (s.kind == "histogram") {
    std::printf("  %-36s count=%-8lld p50=%-8lld p99=%-8lld max=%lld\n",
                s.name.c_str(), static_cast<long long>(s.value),
                static_cast<long long>(s.p50),
                static_cast<long long>(s.p99),
                static_cast<long long>(s.max));
  } else {
    std::printf("  %-36s %lld\n", s.name.c_str(),
                static_cast<long long>(s.value));
  }
}

void PrintSnapshot(const dkb::net::StatsReply& reply) {
  std::printf("server:\n");
  for (const dkb::metrics::MetricSample& s : reply.server) PrintSample(s);
  std::printf("connections (%zu):\n", reply.connections.size());
  std::printf("  %-6s %-21s %-10s %-8s %-8s %-10s %-10s %-6s %s\n", "conn",
              "peer", "session", "requests", "queries", "bytes_in",
              "bytes_out", "errors", "age_s");
  for (const dkb::net::WireConnectionRow& c : reply.connections) {
    std::printf("  %-6lld %-21s %-10lld %-8lld %-8lld %-10lld %-10lld "
                "%-6lld %.1f\n",
                static_cast<long long>(c.connection_id), c.peer.c_str(),
                static_cast<long long>(c.session_id),
                static_cast<long long>(c.requests),
                static_cast<long long>(c.queries),
                static_cast<long long>(c.bytes_in),
                static_cast<long long>(c.bytes_out),
                static_cast<long long>(c.errors),
                static_cast<double>(c.age_us) / 1e6);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool once = false;
  bool metrics = false;
  bool check = false;
  int interval_s = 2;
  std::string host_port;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--once") {
      once = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--interval" && i + 1 < argc) {
      interval_s = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--help" || arg == "-h") {
      return Usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else if (host_port.empty()) {
      host_port = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (host_port.empty()) return Usage(argv[0]);

  if (metrics || check) {
    auto reply = dkb::RemoteClient::FetchStats(host_port,
                                               dkb::net::kStatsPrometheus);
    if (!reply.ok()) {
      std::fprintf(stderr, "fetch %s failed: %s\n", host_port.c_str(),
                   reply.status().ToString().c_str());
      return 1;
    }
    if (check) {
      std::string error;
      if (!dkb::metrics::ValidatePrometheusText(reply->prometheus, &error)) {
        std::fprintf(stderr, "invalid exposition: %s\n", error.c_str());
        return 1;
      }
      std::printf("ok: %zu bytes of valid exposition\n",
                  reply->prometheus.size());
      return 0;
    }
    std::fputs(reply->prometheus.c_str(), stdout);
    return 0;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  for (;;) {
    auto reply = dkb::RemoteClient::FetchStats(
        host_port, dkb::net::kStatsServer | dkb::net::kStatsConnections);
    if (reply.ok()) {
      if (!once) std::printf("\x1b[H\x1b[2J");  // clear on live refresh
      std::printf("dkb_top — %s\n", host_port.c_str());
      PrintSnapshot(*reply);
      std::fflush(stdout);
    } else {
      std::fprintf(stderr, "fetch %s failed: %s\n", host_port.c_str(),
                   reply.status().ToString().c_str());
      if (once) return 1;
    }
    if (once) return 0;
    for (int waited = 0; waited < interval_s * 10 && g_stop == 0; ++waited) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (g_stop != 0) return 0;
  }
}
