// dkb_profile — run a .dkb program's queries and emit the QueryReport.
//
//   $ dkb_profile examples/programs/same_generation.dkb
//   query: sg('a', W)
//   strategy: semi-naive  magic: off  parallelism: 1  cache: miss
//   ...
//
//   $ dkb_profile --format json --magic examples/programs/same_generation.dkb
//   {"query": "sg('a', W)", "strategy": "semi-naive", ...}
//
//   $ dkb_profile --format chrome -o trace.json program.dkb
//   (load trace.json in chrome://tracing or Perfetto)
//
//   $ dkb_profile --connect 127.0.0.1:7070 program.dkb
//   (same run, but against a dkb_server; the server executes and renders)
//
// Rules and facts are consulted into a fresh testbed; every `?-` query in
// the file (plus any --query goals) runs with tracing enabled, so the
// report carries the full span tree: per-phase compilation, per-node LFP
// with per-iteration delta cardinalities, and final answer retrieval.
//
// Exit status: 0 success; 1 a query failed; 2 usage or parse failure.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "client/client.h"
#include "client/in_process_client.h"
#include "client/remote_client.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "datalog/ast.h"
#include "datalog/parser.h"

namespace {

using dkb::testbed::ExplainMode;
using dkb::testbed::QueryOptions;

enum class Format { kText, kJson, kChrome };

struct CliOptions {
  Format format = Format::kText;
  bool plan_only = false;
  bool metrics = false;
  std::vector<std::string> sys_views;
  bool use_magic = false;
  bool supplementary = false;
  bool adaptive = false;
  int parallelism = 1;
  std::string strategy = "semi-naive";
  std::string output_path;
  std::vector<std::string> extra_queries;
  std::string program_path;
  std::string connect;  // empty = in-process
};

int Usage() {
  std::cerr
      << "usage: dkb_profile [--format text|json|chrome] [-o FILE]\n"
      << "                   [--query GOAL]... [--plan] [--metrics]\n"
      << "                   [--sys VIEW]...  (dump sys.* views afterwards)\n"
      << "                   [--magic] [--supplementary] [--adaptive]\n"
      << "                   [--strategy naive|semi-naive|native|native-tc]\n"
      << "                   [--parallelism N]\n"
      << "                   [--connect host:port]  (run against dkb_server)\n"
      << "                   <program.dkb>\n";
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool ParseCli(int argc, char** argv, CliOptions* cli) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--format") {
      if (!next(&value)) return false;
      if (value == "text") {
        cli->format = Format::kText;
      } else if (value == "json") {
        cli->format = Format::kJson;
      } else if (value == "chrome") {
        cli->format = Format::kChrome;
      } else {
        return false;
      }
    } else if (arg == "-o" || arg == "--output") {
      if (!next(&cli->output_path)) return false;
    } else if (arg == "--query") {
      if (!next(&value)) return false;
      cli->extra_queries.push_back(value);
    } else if (arg == "--plan") {
      cli->plan_only = true;
    } else if (arg == "--metrics") {
      cli->metrics = true;
    } else if (arg == "--sys") {
      if (!next(&value)) return false;
      // Accept both "sys.query_log" and the bare "query_log".
      if (value.rfind("sys.", 0) != 0) value = "sys." + value;
      cli->sys_views.push_back(value);
    } else if (arg == "--magic") {
      cli->use_magic = true;
    } else if (arg == "--supplementary") {
      cli->use_magic = true;
      cli->supplementary = true;
    } else if (arg == "--adaptive") {
      cli->adaptive = true;
    } else if (arg == "--strategy") {
      if (!next(&cli->strategy)) return false;
    } else if (arg == "--parallelism") {
      if (!next(&value)) return false;
      cli->parallelism = std::atoi(value.c_str());
    } else if (arg == "--connect") {
      if (!next(&cli->connect)) return false;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      return false;
    } else if (cli->program_path.empty()) {
      cli->program_path = arg;
    } else {
      return false;  // one program file
    }
  }
  return !cli->program_path.empty();
}

bool ResolveStrategy(const std::string& name, dkb::lfp::LfpStrategy* out) {
  if (name == "naive") {
    *out = dkb::lfp::LfpStrategy::kNaive;
  } else if (name == "semi-naive") {
    *out = dkb::lfp::LfpStrategy::kSemiNaive;
  } else if (name == "native") {
    *out = dkb::lfp::LfpStrategy::kNative;
  } else if (name == "native-tc") {
    *out = dkb::lfp::LfpStrategy::kNativeTc;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseCli(argc, argv, &cli)) return Usage();

  std::string text;
  if (!ReadFile(cli.program_path, &text)) {
    std::cerr << "cannot read " << cli.program_path << "\n";
    return 2;
  }
  auto program = dkb::datalog::ParseProgram(text);
  if (!program.ok()) {
    std::cerr << cli.program_path
              << ": parse error: " << program.status().ToString() << "\n";
    return 2;
  }

  // Consult rules and facts only — Consult() rejects embedded queries, and
  // the queries are what we run (and profile) below.
  std::string consult_text;
  for (const dkb::datalog::Rule& rule : program->rules) {
    consult_text += rule.ToString() + "\n";
  }
  for (const dkb::datalog::Rule& fact : program->facts) {
    consult_text += fact.ToString() + "\n";
  }

  std::vector<dkb::datalog::Atom> goals = program->queries;
  for (const std::string& q : cli.extra_queries) {
    auto goal = dkb::datalog::ParseQuery(q);
    if (!goal.ok()) {
      std::cerr << "bad --query goal '" << q
                << "': " << goal.status().ToString() << "\n";
      return 2;
    }
    goals.push_back(std::move(goal).value());
  }
  if (goals.empty()) {
    std::cerr << cli.program_path
              << ": no queries (add a `?- goal.` line or pass --query)\n";
    return 2;
  }

  QueryOptions options;
  options.use_magic = cli.use_magic;
  options.supplementary = cli.supplementary;
  options.adaptive_magic = cli.adaptive;
  options.WithParallelism(cli.parallelism);
  options.explain = cli.plan_only ? ExplainMode::kPlan : ExplainMode::kNone;
  options.collect_trace = true;
  if (!ResolveStrategy(cli.strategy, &options.strategy)) {
    std::cerr << "unknown --strategy: " << cli.strategy << "\n";
    return Usage();
  }

  // One transport-independent client: in-process by default, remote with
  // --connect. Everything below this point is identical either way.
  std::unique_ptr<dkb::Client> client;
  if (cli.connect.empty()) {
    auto local = dkb::InProcessClient::Create();
    if (!local.ok()) {
      std::cerr << "testbed init failed: " << local.status().ToString()
                << "\n";
      return 1;
    }
    client = std::move(*local);
  } else {
    auto remote = dkb::RemoteClient::Connect(cli.connect);
    if (!remote.ok()) {
      std::cerr << "connect " << cli.connect << " failed: "
                << remote.status().ToString() << "\n";
      return 1;
    }
    client = std::move(*remote);
  }

  if (!consult_text.empty()) {
    dkb::Status consulted = client->Consult(consult_text);
    if (!consulted.ok()) {
      std::cerr << cli.program_path
                << ": consult failed: " << consulted.ToString() << "\n";
      return 1;
    }
  }

  // The executing side renders the full QueryReport (plan, phase table,
  // span tree) in the format we will print. Since protocol v2 the span
  // tree itself also comes back as values (rs->trace) — for the pure
  // trace formats (chrome) we render that locally, which over --connect
  // includes the server's net.* request spans around the engine hierarchy.
  uint8_t report_formats = dkb::net::kReportText;
  if (cli.format == Format::kJson) report_formats = dkb::net::kReportJson;
  if (cli.format == Format::kChrome) report_formats = dkb::net::kReportChrome;

  std::vector<std::string> rendered;
  for (const dkb::datalog::Atom& goal : goals) {
    auto rs = client->Query(goal.ToString(), options, report_formats);
    if (!rs.ok()) {
      std::cerr << "query " << goal.ToString()
                << " failed: " << rs.status().ToString() << "\n";
      return 1;
    }
    switch (cli.format) {
      case Format::kText:
        rendered.push_back(rs->report_text);
        break;
      case Format::kJson:
        rendered.push_back(rs->report_json);
        break;
      case Format::kChrome:
        rendered.push_back(rs->trace != nullptr
                               ? dkb::trace::RenderChromeTrace(*rs->trace)
                               : rs->report_chrome);
        break;
    }
  }

  std::string out;
  if (cli.format == Format::kText) {
    for (size_t i = 0; i < rendered.size(); ++i) {
      if (i > 0) out += "\n";
      out += rendered[i];
    }
    if (cli.metrics) {
      out += "\nmetrics:\n" + dkb::metrics::GlobalMetrics().SnapshotJson() +
             "\n";
    }
  } else {
    // json/chrome: one object for a single query, else an array. --metrics
    // wraps the reports in {"reports": ..., "metrics": ...}.
    std::string body;
    if (rendered.size() == 1) {
      body = rendered[0];
    } else {
      body = "[";
      for (size_t i = 0; i < rendered.size(); ++i) {
        if (i > 0) body += ", ";
        body += rendered[i];
      }
      body += "]";
    }
    if (cli.metrics) {
      out = "{\"reports\": " + body + ", \"metrics\": " +
            dkb::metrics::GlobalMetrics().SnapshotJson() + "}\n";
    } else {
      out = body + "\n";
    }
  }

  // --sys: dump the requested system views through the normal SQL path,
  // after the profiled queries so sys.query_log shows them.
  for (const std::string& view : cli.sys_views) {
    auto rows = client->ExecuteSql("SELECT * FROM " + view);
    if (!rows.ok()) {
      std::cerr << view << ": " << rows.status().ToString() << "\n";
      return 1;
    }
    out += "\n" + view + ":\n" + dkb::ResultSetToString(*rows);
  }

  if (cli.output_path.empty()) {
    std::cout << out;
  } else {
    std::ofstream file(cli.output_path, std::ios::trunc);
    if (!file) {
      std::cerr << "cannot open " << cli.output_path << " for writing\n";
      return 1;
    }
    file << out;
    if (!file.flush()) {
      std::cerr << "write to " << cli.output_path << " failed\n";
      return 1;
    }
  }
  return 0;
}
