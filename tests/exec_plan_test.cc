// Operator-level unit tests for the physical executor: each PlanNode is
// constructed directly and driven through Open/NextBatch/Close, independent
// of the SQL frontend and planner.

#include <gtest/gtest.h>

#include <memory>

#include "catalog/catalog.h"
#include "exec/executor.h"
#include "exec/plan.h"

namespace dkb::exec {
namespace {

class ExecPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema schema({{"k", DataType::kInteger}, {"v", DataType::kVarchar}});
    auto created = catalog_.CreateTable("t", schema);
    ASSERT_TRUE(created.ok());
    table_ = &(*created)->shard(0);
    for (int64_t i = 0; i < 10; ++i) {
      table_->InsertUnchecked(
          {Value(i), Value(std::string(1, static_cast<char>('a' + i % 3)))});
    }
  }

  /// Drains an operator into a vector, batch at a time.
  std::vector<Tuple> Drain(PlanNode* node) {
    std::vector<Tuple> out;
    Status s = node->Open();
    EXPECT_TRUE(s.ok()) << s.ToString();
    RowBatch batch;
    while (true) {
      auto more = node->NextBatch(&batch);
      EXPECT_TRUE(more.ok()) << more.status().ToString();
      if (!more.ok() || !*more) break;
      for (size_t i = 0; i < batch.size(); ++i) {
        out.push_back(batch.MaterializeTuple(i));
      }
    }
    node->Close();
    return out;
  }

  BoundExprPtr KeyLessThan(int64_t bound) {
    return std::make_unique<BoundComparison>(
        sql::CompareOp::kLt, std::make_unique<BoundColumn>(0),
        std::make_unique<BoundLiteral>(Value(bound)));
  }

  Catalog catalog_;
  Table* table_ = nullptr;
  ExecStats stats_;
};

TEST_F(ExecPlanTest, SeqScanAll) {
  SeqScanNode scan(table_, nullptr, &stats_);
  EXPECT_EQ(Drain(&scan).size(), 10u);
  EXPECT_EQ(stats_.rows_scanned, 10);
}

TEST_F(ExecPlanTest, SeqScanWithFilterAndReopen) {
  SeqScanNode scan(table_, KeyLessThan(4), &stats_);
  EXPECT_EQ(Drain(&scan).size(), 4u);
  // Re-open resets the cursor.
  EXPECT_EQ(Drain(&scan).size(), 4u);
}

TEST_F(ExecPlanTest, SeqScanSkipsTombstones) {
  table_->Delete(0);
  table_->Delete(5);
  SeqScanNode scan(table_, nullptr, &stats_);
  EXPECT_EQ(Drain(&scan).size(), 8u);
}

TEST_F(ExecPlanTest, IndexScanMultipleKeys) {
  ASSERT_TRUE(catalog_.CreateIndex("t", "ix", {"v"}, false).ok());
  const Index* ix = table_->indexes()[0].get();
  IndexScanNode scan(table_, ix, {{Value("a")}, {Value("b")}}, nullptr,
                     &stats_);
  // 'a' appears for k in {0,3,6,9}, 'b' for {1,4,7}.
  EXPECT_EQ(Drain(&scan).size(), 7u);
  EXPECT_EQ(stats_.index_probes, 2);
}

TEST_F(ExecPlanTest, FilterNode) {
  auto scan = std::make_unique<SeqScanNode>(table_, nullptr, &stats_);
  FilterNode filter(std::move(scan), KeyLessThan(2));
  EXPECT_EQ(Drain(&filter).size(), 2u);
}

TEST_F(ExecPlanTest, ProjectNode) {
  auto scan = std::make_unique<SeqScanNode>(table_, nullptr, &stats_);
  std::vector<BoundExprPtr> exprs;
  exprs.push_back(std::make_unique<BoundColumn>(1));
  ProjectNode project(std::move(scan), std::move(exprs),
                      Schema({{"v", DataType::kVarchar}}));
  auto rows = Drain(&project);
  ASSERT_EQ(rows.size(), 10u);
  EXPECT_EQ(rows[0].size(), 1u);
  EXPECT_EQ(project.output_schema().column(0).name, "v");
}

TEST_F(ExecPlanTest, NestedLoopJoinCrossProduct) {
  auto a = std::make_unique<SeqScanNode>(table_, KeyLessThan(2), &stats_);
  auto b = std::make_unique<SeqScanNode>(table_, KeyLessThan(3), &stats_);
  NestedLoopJoinNode join(std::move(a), std::move(b), nullptr, &stats_);
  EXPECT_EQ(Drain(&join).size(), 6u);  // 2 x 3
  EXPECT_EQ(join.output_schema().num_columns(), 4u);
}

TEST_F(ExecPlanTest, HashJoinOnKey) {
  auto a = std::make_unique<SeqScanNode>(table_, nullptr, &stats_);
  auto b = std::make_unique<SeqScanNode>(table_, nullptr, &stats_);
  // Join on the v column (slot 1 both sides).
  HashJoinNode join(std::move(a), std::move(b), {1}, {1}, nullptr, &stats_);
  // v='a': 4 rows -> 16 pairs; 'b': 3 -> 9; 'c': 3 -> 9. Total 34.
  EXPECT_EQ(Drain(&join).size(), 34u);
}

TEST_F(ExecPlanTest, HashJoinEmptyBuildSide) {
  auto a = std::make_unique<SeqScanNode>(table_, nullptr, &stats_);
  auto b = std::make_unique<SeqScanNode>(table_, KeyLessThan(-1), &stats_);
  HashJoinNode join(std::move(a), std::move(b), {0}, {0}, nullptr, &stats_);
  EXPECT_TRUE(Drain(&join).empty());
}

TEST_F(ExecPlanTest, IndexNLJoin) {
  ASSERT_TRUE(catalog_.CreateIndex("t", "kix", {"k"}, false).ok());
  const Index* ix = table_->FindIndexOn({0});
  ASSERT_NE(ix, nullptr);
  auto outer = std::make_unique<SeqScanNode>(table_, KeyLessThan(5), &stats_);
  IndexNLJoinNode join(std::move(outer), table_, ix, {0}, nullptr, &stats_);
  EXPECT_EQ(Drain(&join).size(), 5u);  // each outer row matches itself
  EXPECT_EQ(stats_.index_probes, 5);
}

TEST_F(ExecPlanTest, DistinctNode) {
  auto scan = std::make_unique<SeqScanNode>(table_, nullptr, &stats_);
  std::vector<BoundExprPtr> exprs;
  exprs.push_back(std::make_unique<BoundColumn>(1));
  auto project = std::make_unique<ProjectNode>(
      std::move(scan), std::move(exprs), Schema({{"v", DataType::kVarchar}}));
  DistinctNode distinct(std::move(project));
  EXPECT_EQ(Drain(&distinct).size(), 3u);  // a, b, c
}

TEST_F(ExecPlanTest, SortAscendingDescending) {
  auto scan = std::make_unique<SeqScanNode>(table_, nullptr, &stats_);
  SortNode sort(std::move(scan), {{1, true}, {0, false}});
  auto rows = Drain(&sort);
  ASSERT_EQ(rows.size(), 10u);
  EXPECT_EQ(rows[0][1], Value("a"));
  EXPECT_EQ(rows[0][0], Value(static_cast<int64_t>(9)));  // desc within 'a'
  EXPECT_EQ(rows.back()[1], Value("c"));
}

TEST_F(ExecPlanTest, LimitNode) {
  auto scan = std::make_unique<SeqScanNode>(table_, nullptr, &stats_);
  LimitNode limit(std::move(scan), 3);
  EXPECT_EQ(Drain(&limit).size(), 3u);
  EXPECT_EQ(Drain(&limit).size(), 3u);  // reopen resets the count
}

TEST_F(ExecPlanTest, CountNode) {
  auto scan = std::make_unique<SeqScanNode>(table_, KeyLessThan(7), &stats_);
  CountNode count(std::move(scan), "n");
  auto rows = Drain(&count);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(static_cast<int64_t>(7)));
}

TEST_F(ExecPlanTest, SetOpSemantics) {
  auto make_scan = [&](int64_t bound) {
    return std::make_unique<SeqScanNode>(table_, KeyLessThan(bound), &stats_);
  };
  {
    SetOpNode u(make_scan(4), make_scan(6), SetOpKind::kUnion);
    EXPECT_EQ(Drain(&u).size(), 6u);
  }
  {
    SetOpNode ua(make_scan(4), make_scan(6), SetOpKind::kUnionAll);
    EXPECT_EQ(Drain(&ua).size(), 10u);
  }
  {
    SetOpNode ex(make_scan(6), make_scan(4), SetOpKind::kExcept);
    EXPECT_EQ(Drain(&ex).size(), 2u);  // rows 4, 5
  }
  {
    SetOpNode in(make_scan(6), make_scan(4), SetOpKind::kIntersect);
    EXPECT_EQ(Drain(&in).size(), 4u);
  }
}

TEST_F(ExecPlanTest, RenderPlanTree) {
  auto scan = std::make_unique<SeqScanNode>(table_, nullptr, &stats_);
  auto filter = std::make_unique<FilterNode>(std::move(scan), KeyLessThan(2));
  LimitNode limit(std::move(filter), 1);
  std::string plan = RenderPlan(limit);
  EXPECT_EQ(plan, "Limit\n  Filter\n    SeqScan(t)\n");
}

TEST_F(ExecPlanTest, ExprEvaluationSemantics) {
  Tuple row = {Value(static_cast<int64_t>(5)), Value("x"), Value::Null()};
  BoundColumn col0(0);
  EXPECT_EQ(col0.Evaluate(row), Value(static_cast<int64_t>(5)));
  // NULL comparisons are false either way.
  BoundComparison null_eq(sql::CompareOp::kEq,
                          std::make_unique<BoundColumn>(2),
                          std::make_unique<BoundColumn>(2));
  EXPECT_FALSE(null_eq.EvaluateBool(row));
  BoundNot not_null_eq(std::make_unique<BoundComparison>(
      sql::CompareOp::kEq, std::make_unique<BoundColumn>(2),
      std::make_unique<BoundColumn>(2)));
  EXPECT_TRUE(not_null_eq.EvaluateBool(row));
  // Cross-type comparison: int vs string is simply unequal.
  BoundComparison cross(sql::CompareOp::kEq,
                        std::make_unique<BoundColumn>(0),
                        std::make_unique<BoundColumn>(1));
  EXPECT_FALSE(cross.EvaluateBool(row));
  // IN-list with NULL needle is false.
  BoundInList in_null(std::make_unique<BoundColumn>(2),
                      {Value(static_cast<int64_t>(5))});
  EXPECT_FALSE(in_null.EvaluateBool(row));
}

}  // namespace
}  // namespace dkb::exec
