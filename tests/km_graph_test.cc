#include <gtest/gtest.h>

#include <algorithm>

#include "datalog/parser.h"
#include "km/eval_graph.h"
#include "km/pcg.h"
#include "km/scc.h"

namespace dkb::km {
namespace {

std::vector<datalog::Rule> Rules(const std::string& text) {
  auto program = datalog::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return program->rules;
}

// The paper's Figure 1 rule set (predicates renamed for clarity):
//   R1: p(X,Y) :- p1(X,Z), q(Z,Y).      (p,q mutually recursive via R6)
//   R2: p(X,Y) :- b1(Y).                -- simplified to binary safe form
// We use a faithful-but-safe variant with the same graph structure.
const char* kFigure1 =
    "p(X, Y)  :- p1(X, Z), q(Z, Y).\n"
    "p(X, Y)  :- b1(X, Y).\n"
    "p1(X, Y) :- b2(X, Z), p1(Z, Y).\n"
    "p1(X, Y) :- b2(X, Y).\n"
    "p2(X, Y) :- b1(X, Z), p2(Z, Y).\n"
    "p2(X, Y) :- b3(X, Y).\n"
    "q(X, Y)  :- p(X, Z), p2(Z, Y).\n";

TEST(PcgTest, EdgesHeadToBody) {
  Pcg pcg;
  for (const auto& rule : Rules("a(X,Y) :- b(X,Z), c(Z,Y).")) {
    pcg.AddRule(rule);
  }
  EXPECT_TRUE(pcg.HasNode("a"));
  EXPECT_EQ(pcg.Successors("a").size(), 2u);
  EXPECT_EQ(pcg.Successors("b").size(), 0u);
  EXPECT_EQ(pcg.num_edges(), 2u);
}

TEST(PcgTest, ReachabilityTransitive) {
  Pcg pcg;
  for (const auto& rule :
       Rules("a(X,Y) :- b(X,Y).\n b(X,Y) :- c(X,Y).\n c(X,Y) :- d(X,Y).\n")) {
    pcg.AddRule(rule);
  }
  auto reach = pcg.Reachable("a");
  EXPECT_EQ(reach, (std::set<std::string>{"b", "c", "d"}));
  EXPECT_TRUE(pcg.Reachable("d").empty());
}

TEST(PcgTest, SelfLoopReachesItself) {
  Pcg pcg;
  for (const auto& rule : Rules("a(X,Y) :- a(X,Z), e(Z,Y).\n")) {
    pcg.AddRule(rule);
  }
  EXPECT_EQ(pcg.Reachable("a").count("a"), 1u);
}

TEST(PcgTest, TransitiveClosurePairs) {
  Pcg pcg;
  for (const auto& rule : Rules("a(X,Y) :- b(X,Y).\n b(X,Y) :- c(X,Y).\n")) {
    pcg.AddRule(rule);
  }
  auto pairs = pcg.TransitiveClosure();
  // a->b, a->c, b->c.
  EXPECT_EQ(pairs.size(), 3u);
}

TEST(PcgTest, Figure1Reachability) {
  Pcg pcg;
  for (const auto& rule : Rules(kFigure1)) pcg.AddRule(rule);
  auto reach = pcg.Reachable("p");
  // From p everything but p itself... p is on a cycle with q, so p too.
  EXPECT_EQ(reach.count("q"), 1u);
  EXPECT_EQ(reach.count("p"), 1u);
  EXPECT_EQ(reach.count("p1"), 1u);
  EXPECT_EQ(reach.count("p2"), 1u);
  EXPECT_EQ(reach.count("b1"), 1u);
  EXPECT_EQ(reach.count("b2"), 1u);
  EXPECT_EQ(reach.count("b3"), 1u);
  // p2 does not reach p.
  EXPECT_EQ(pcg.Reachable("p2").count("p"), 0u);
}

TEST(SccTest, Figure1Cliques) {
  Pcg pcg;
  for (const auto& rule : Rules(kFigure1)) pcg.AddRule(rule);
  auto components = StronglyConnectedComponents(pcg);
  // Expected SCCs: {p,q}, {p1}, {p2}, and singleton base nodes.
  std::vector<std::vector<std::string>> recursive;
  for (const auto& c : components) {
    if (IsRecursiveComponent(pcg, c)) recursive.push_back(c);
  }
  ASSERT_EQ(recursive.size(), 3u);
  // p,q mutually recursive.
  bool found_pq = false;
  for (const auto& c : recursive) {
    if (c.size() == 2) {
      EXPECT_EQ(c, (std::vector<std::string>{"p", "q"}));
      found_pq = true;
    }
  }
  EXPECT_TRUE(found_pq);
}

TEST(SccTest, CalleesBeforeCallers) {
  Pcg pcg;
  for (const auto& rule : Rules(kFigure1)) pcg.AddRule(rule);
  auto components = StronglyConnectedComponents(pcg);
  auto position = [&](const std::string& pred) {
    for (size_t i = 0; i < components.size(); ++i) {
      if (std::count(components[i].begin(), components[i].end(), pred) > 0) {
        return i;
      }
    }
    ADD_FAILURE() << pred << " not found";
    return size_t{0};
  };
  // p1 and p2 must be evaluated before the {p,q} clique.
  EXPECT_LT(position("p1"), position("p"));
  EXPECT_LT(position("p2"), position("q"));
  EXPECT_LT(position("b2"), position("p1"));
}

TEST(SccTest, DeepChainDoesNotOverflow) {
  // 20000-long dependency chain exercises the iterative Tarjan.
  Pcg pcg;
  datalog::Rule rule;
  for (int i = 0; i < 20000; ++i) {
    auto r = datalog::ParseRule("p" + std::to_string(i) + "(X,Y) :- p" +
                                std::to_string(i + 1) + "(X,Y).");
    ASSERT_TRUE(r.ok());
    pcg.AddRule(*r);
  }
  auto components = StronglyConnectedComponents(pcg);
  EXPECT_EQ(components.size(), 20001u);
}

TEST(EvalGraphTest, Figure1EvaluationOrder) {
  auto rules = Rules(kFigure1);
  std::set<std::string> derived = {"p", "q", "p1", "p2"};
  auto order = BuildEvaluationOrder(rules, derived);
  ASSERT_TRUE(order.ok()) << order.status().ToString();
  // Three nodes, all cliques.
  ASSERT_EQ(order->nodes.size(), 3u);
  for (const auto& node : order->nodes) {
    EXPECT_EQ(node.kind, EvalNode::Kind::kClique);
  }
  // The p,q clique must come last and have the right rule split.
  const EvalNode& last = order->nodes.back();
  EXPECT_EQ(last.clique.predicates, (std::vector<std::string>{"p", "q"}));
  EXPECT_EQ(last.clique.recursive_rules.size(), 2u);  // R1 and R6
  EXPECT_EQ(last.clique.exit_rules.size(), 1u);       // p :- b1
  EXPECT_EQ(order->base_predicates,
            (std::set<std::string>{"b1", "b2", "b3"}));
}

TEST(EvalGraphTest, NonRecursivePredicateNode) {
  auto rules = Rules("v(X,Y) :- e(X,Y).\n v(X,Y) :- f(X,Y).\n");
  auto order = BuildEvaluationOrder(rules, {"v"});
  ASSERT_TRUE(order.ok());
  ASSERT_EQ(order->nodes.size(), 1u);
  EXPECT_EQ(order->nodes[0].kind, EvalNode::Kind::kPredicate);
  EXPECT_EQ(order->nodes[0].predicate, "v");
  EXPECT_EQ(order->nodes[0].rules.size(), 2u);
}

TEST(EvalGraphTest, MissingDefinitionIsSemanticError) {
  auto rules = Rules("v(X,Y) :- e(X,Y).\n");
  auto order = BuildEvaluationOrder(rules, {"v", "ghost"});
  ASSERT_FALSE(order.ok());
  EXPECT_EQ(order.status().code(), StatusCode::kSemanticError);
}

TEST(EvalGraphTest, NonLinearSelfRecursionIsClique) {
  auto rules = Rules(
      "anc(X,Y) :- par(X,Y).\n"
      "anc(X,Y) :- anc(X,Z), anc(Z,Y).\n");
  auto order = BuildEvaluationOrder(rules, {"anc"});
  ASSERT_TRUE(order.ok());
  ASSERT_EQ(order->nodes.size(), 1u);
  EXPECT_EQ(order->nodes[0].kind, EvalNode::Kind::kClique);
  EXPECT_EQ(order->nodes[0].clique.exit_rules.size(), 1u);
  EXPECT_EQ(order->nodes[0].clique.recursive_rules.size(), 1u);
}

}  // namespace
}  // namespace dkb::km
