// Wire-protocol tests: frame codec edge cases (partial reads, bad lengths,
// zero-length payloads, malformed type bytes), payload round trips, and a
// live Server driven both through RemoteClient and through a raw socket
// (for the violations a well-behaved client cannot produce).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "client/remote_client.h"
#include "gtest/gtest.h"
#include "net/server.h"
#include "net/wire.h"
#include "testbed/testbed.h"

namespace dkb::net {
namespace {

// ---------------------------------------------------------------------------
// Frame codec.

TEST(FrameDecoderTest, RoundTripsSingleFrame) {
  std::string bytes = EncodeFrame(MsgType::kConsult, 42, "payload");
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kFrame);
  EXPECT_EQ(frame.type, MsgType::kConsult);
  EXPECT_EQ(frame.request_id, 42u);
  EXPECT_EQ(frame.payload, "payload");
  EXPECT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kNeedMore);
}

TEST(FrameDecoderTest, ReassemblesByteByByteDelivery) {
  // The cruellest packetization: every byte arrives alone, across two
  // back-to-back frames.
  std::string bytes = EncodeFrame(MsgType::kQuery, 7, "first") +
                      EncodeFrame(MsgType::kSql, 8, "second");
  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (char c : bytes) {
    decoder.Append(&c, 1);
    Frame frame;
    while (decoder.Pop(&frame) == FrameDecoder::Next::kFrame) {
      frames.push_back(frame);
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].request_id, 7u);
  EXPECT_EQ(frames[0].payload, "first");
  EXPECT_EQ(frames[1].type, MsgType::kSql);
  EXPECT_EQ(frames[1].payload, "second");
}

TEST(FrameDecoderTest, ZeroLengthPayloadFrame) {
  std::string bytes = EncodeFrame(MsgType::kListRules, 3, "");
  // len counts only type + request_id.
  uint32_t len;
  std::memcpy(&len, bytes.data(), 4);
  EXPECT_EQ(len, kFrameHeaderLen);
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kFrame);
  EXPECT_EQ(frame.type, MsgType::kListRules);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FrameDecoderTest, LengthBelowHeaderIsStickyError) {
  // len = 2 < kFrameHeaderLen: the length prefix cannot be trusted, so the
  // stream has no recoverable frame boundary.
  std::string bytes = {2, 0, 0, 0, 1, 1};
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kError);
  EXPECT_EQ(decoder.error().code(), ErrorCode::kProtocolError);
  // Sticky: even appending a valid frame cannot resynchronize.
  std::string good = EncodeFrame(MsgType::kListRules, 1, "");
  decoder.Append(good.data(), good.size());
  EXPECT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kError);
}

TEST(FrameDecoderTest, OversizedFrameIsError) {
  FrameDecoder decoder(/*max_frame_len=*/64);
  std::string bytes = EncodeFrame(MsgType::kConsult, 1, std::string(100, 'x'));
  decoder.Append(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kError);
  EXPECT_EQ(decoder.error().code(), ErrorCode::kProtocolError);
}

TEST(FrameDecoderTest, RequestTypeRange) {
  EXPECT_TRUE(IsRequestType(0x01));
  EXPECT_TRUE(IsRequestType(0x0E));
  EXPECT_TRUE(IsRequestType(0x0F));  // kStats (v2)
  EXPECT_FALSE(IsRequestType(0x00));
  EXPECT_FALSE(IsRequestType(0x10));
  EXPECT_FALSE(IsRequestType(0x81));
  EXPECT_FALSE(IsRequestType(0xFF));
}

// ---------------------------------------------------------------------------
// Payload codecs.

TEST(WireCodecTest, QueryOptionsRoundTrip) {
  WireQueryOptions in;
  in.options.use_magic = true;
  in.options.supplementary = true;
  in.options.strategy = lfp::LfpStrategy::kNaive;
  in.options.use_cache = true;
  in.options.WithParallelism(4);
  in.report_formats = kReportText | kReportChrome;
  WireWriter w;
  EncodeQueryOptions(&w, in);

  WireReader r(w.str());
  WireQueryOptions out;
  ASSERT_TRUE(DecodeQueryOptions(&r, &out));
  EXPECT_TRUE(r.Done());
  EXPECT_TRUE(out.options.use_magic);
  EXPECT_TRUE(out.options.supplementary);
  EXPECT_EQ(out.options.strategy, lfp::LfpStrategy::kNaive);
  EXPECT_TRUE(out.options.use_cache);
  EXPECT_EQ(out.options.EffectivePolicy().lfp_parallelism, 4);
  EXPECT_EQ(out.report_formats, kReportText | kReportChrome);
}

TEST(WireCodecTest, QueryOptionsRejectsBadStrategyByte) {
  WireWriter w;
  EncodeQueryOptions(&w, WireQueryOptions{});
  std::string bytes = w.Take();
  bytes[3] = static_cast<char>(200);  // strategy byte way out of range
  WireReader r(bytes);
  WireQueryOptions out;
  EXPECT_FALSE(DecodeQueryOptions(&r, &out));
}

TEST(WireCodecTest, ResultSetRoundTrip) {
  WireResultSet in;
  in.schema = Schema({{"name", DataType::kVarchar}, {"n", DataType::kInteger}});
  in.rows.push_back({Value::Interned("alpha"), Value(int64_t{7})});
  in.rows.push_back({Value(), Value(int64_t{-1})});  // null survives
  in.rows_affected = 2;
  in.compile_us = 123;
  in.exec_us = 456;
  in.from_cache = true;
  in.report_text = "plan: ...";
  WireWriter w;
  EncodeResultSet(&w, in);

  WireReader r(w.str());
  WireResultSet out;
  ASSERT_TRUE(DecodeResultSet(&r, &out));
  EXPECT_TRUE(r.Done());
  ASSERT_EQ(out.schema.num_columns(), 2u);
  EXPECT_EQ(out.schema.column(0).name, "name");
  EXPECT_EQ(out.schema.column(1).type, DataType::kInteger);
  ASSERT_EQ(out.rows.size(), 2u);
  EXPECT_EQ(out.rows[0][0].as_string(), "alpha");
  EXPECT_EQ(out.rows[0][1].as_int(), 7);
  EXPECT_TRUE(out.rows[1][0].is_null());
  EXPECT_EQ(out.compile_us, 123);
  EXPECT_EQ(out.exec_us, 456);
  EXPECT_TRUE(out.from_cache);
  EXPECT_EQ(out.report_text, "plan: ...");
  EXPECT_TRUE(out.report_json.empty());
}

TEST(WireCodecTest, TruncatedResultSetFailsCleanly) {
  WireResultSet in;
  in.schema = Schema({{"c", DataType::kVarchar}});
  in.rows.push_back({Value::Interned("v")});
  WireWriter w;
  EncodeResultSet(&w, in);
  std::string bytes = w.Take();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    WireReader r(std::string_view(bytes).substr(0, cut));
    WireResultSet out;
    // Either the decode fails, or it succeeded on a prefix that did not
    // consume everything we cut — never a crash, never a bogus Done().
    if (DecodeResultSet(&r, &out)) EXPECT_FALSE(cut < bytes.size() && r.Done());
  }
}

TEST(WireCodecTest, ErrorPayloadRoundTrip) {
  Status in = Status::NotFound("no such rule");
  Status out = DecodeErrorPayload(EncodeErrorPayload(in));
  EXPECT_EQ(out.code(), ErrorCode::kNotFound);
  EXPECT_EQ(out.message(), "no such rule");
}

TEST(WireCodecTest, MalformedErrorPayloadIsProtocolError) {
  EXPECT_EQ(DecodeErrorPayload("x").code(), ErrorCode::kProtocolError);
  // An OK code inside an Error frame is a lying peer: degrade to internal.
  WireWriter w;
  w.U16(0);  // kOk
  w.Str("fine");
  EXPECT_EQ(DecodeErrorPayload(w.str()).code(), ErrorCode::kInternal);
}

// ---------------------------------------------------------------------------
// Trace and stats codecs (protocol v2).

void ExpectSameTree(const trace::SpanNode& a, const trace::SpanNode& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.start_us, b.start_us);
  EXPECT_EQ(a.end_us, b.end_us);
  EXPECT_EQ(a.tid, b.tid);
  ASSERT_EQ(a.tags.size(), b.tags.size()) << a.name;
  for (size_t i = 0; i < a.tags.size(); ++i) {
    EXPECT_EQ(a.tags[i].key, b.tags[i].key);
    EXPECT_EQ(a.tags[i].value, b.tags[i].value);
    EXPECT_EQ(a.tags[i].is_number, b.tags[i].is_number);
  }
  ASSERT_EQ(a.children.size(), b.children.size()) << a.name;
  for (size_t i = 0; i < a.children.size(); ++i) {
    ExpectSameTree(a.children[i], b.children[i]);
  }
}

trace::SpanNode MakeSampleTree() {
  trace::SpanNode root;
  root.name = "net.request";
  root.start_us = 0;
  root.end_us = 1500;
  root.tid = 7;
  root.tags = {{"request_id", "3", true}, {"peer", "127.0.0.1:9", false}};
  trace::SpanNode execute;
  execute.name = "net.execute";
  execute.start_us = 10;
  execute.end_us = 1400;
  trace::SpanNode engine;
  engine.name = "query:anc(a, X)";
  engine.start_us = 12;
  engine.end_us = 1390;
  engine.tags = {{"iter", "4", true}};
  execute.children.push_back(engine);
  root.children.push_back(std::move(execute));
  trace::SpanNode encode;
  encode.name = "net.encode";
  encode.start_us = 1400;
  encode.end_us = 1500;
  root.children.push_back(std::move(encode));
  return root;
}

TEST(WireCodecTest, SpanNodeRoundTrip) {
  trace::SpanNode in = MakeSampleTree();
  WireWriter w;
  EncodeSpanNode(&w, in);
  WireReader r(w.str());
  trace::SpanNode out;
  ASSERT_TRUE(DecodeSpanNode(&r, &out));
  EXPECT_TRUE(r.Done());
  ExpectSameTree(in, out);
  // Snapshot-equivalence: the decoded tree renders byte-identically, which
  // is what makes remote and local profiling output interchangeable.
  EXPECT_EQ(trace::RenderChromeTrace(in), trace::RenderChromeTrace(out));
  EXPECT_EQ(trace::RenderText(in), trace::RenderText(out));
}

TEST(WireCodecTest, TruncatedSpanNodeFailsCleanly) {
  WireWriter w;
  EncodeSpanNode(&w, MakeSampleTree());
  std::string bytes = w.Take();
  for (size_t len : {bytes.size() - 1, bytes.size() / 2, size_t{3}}) {
    WireReader r(std::string_view(bytes).substr(0, len));
    trace::SpanNode out;
    EXPECT_FALSE(DecodeSpanNode(&r, &out)) << "len=" << len;
  }
}

TEST(WireCodecTest, TraceSectionSkipsUnsampledSets) {
  std::vector<WireResultSet> sets(3);
  sets[1].trace = std::make_shared<trace::SpanNode>(MakeSampleTree());
  WireWriter w;
  EncodeTraceSection(&w, sets);

  std::vector<WireResultSet> out(3);
  WireReader r(w.str());
  ASSERT_TRUE(DecodeTraceSection(&r, &out));
  EXPECT_EQ(out[0].trace, nullptr);
  ASSERT_NE(out[1].trace, nullptr);
  EXPECT_EQ(out[2].trace, nullptr);
  ExpectSameTree(*sets[1].trace, *out[1].trace);
}

TEST(WireCodecTest, EmptyTraceSectionIsBackwardCompatible) {
  // A v2 response with no sampled queries and a v1-style response with no
  // trailing section at all both decode to "no traces".
  std::vector<WireResultSet> sets(2);
  WireWriter w;
  EncodeTraceSection(&w, sets);
  std::vector<WireResultSet> out(2);
  WireReader r(w.str());
  ASSERT_TRUE(DecodeTraceSection(&r, &out));
  EXPECT_EQ(out[0].trace, nullptr);

  WireReader empty("");
  std::vector<WireResultSet> out2(2);
  EXPECT_TRUE(DecodeTraceSection(&empty, &out2));
}

TEST(WireCodecTest, StatsRequestValidation) {
  uint8_t sections = 0;
  EXPECT_TRUE(DecodeStatsRequest(EncodeStatsRequest(kStatsAll), &sections));
  EXPECT_EQ(sections, kStatsAll);
  EXPECT_TRUE(DecodeStatsRequest(EncodeStatsRequest(kStatsServer), &sections));
  EXPECT_EQ(sections, kStatsServer);
  // Zero sections, unknown bits, and trailing bytes are all malformed.
  EXPECT_FALSE(DecodeStatsRequest(EncodeStatsRequest(0), &sections));
  EXPECT_FALSE(DecodeStatsRequest(EncodeStatsRequest(0xF8), &sections));
  EXPECT_FALSE(DecodeStatsRequest(std::string_view("\x01\x00", 2), &sections));
}

TEST(WireCodecTest, StatsReplyRoundTrip) {
  StatsReply in;
  in.sections = kStatsAll;
  metrics::MetricSample sample;
  sample.name = "dkb.server.uptime_us";
  sample.kind = "counter";
  sample.value = 123456;
  in.server.push_back(sample);
  WireConnectionRow conn;
  conn.connection_id = 42;
  conn.peer = "127.0.0.1:50000";
  conn.session_id = 7;
  conn.frames_received = 10;
  conn.bytes_in = 200;
  conn.bytes_out = 4000;
  conn.queries = 5;
  conn.requests = 9;
  conn.errors = 1;
  conn.age_us = 999;
  in.connections.push_back(conn);
  in.prometheus = "# TYPE dkb_server_uptime_us gauge\n";

  WireWriter w;
  EncodeStatsReply(&w, in);
  WireReader r(w.str());
  StatsReply out;
  ASSERT_TRUE(DecodeStatsReply(&r, &out));
  EXPECT_EQ(out.sections, kStatsAll);
  ASSERT_EQ(out.server.size(), 1u);
  EXPECT_EQ(out.server[0].name, "dkb.server.uptime_us");
  EXPECT_EQ(out.server[0].value, 123456);
  ASSERT_EQ(out.connections.size(), 1u);
  EXPECT_EQ(out.connections[0].connection_id, 42);
  EXPECT_EQ(out.connections[0].peer, "127.0.0.1:50000");
  EXPECT_EQ(out.connections[0].requests, 9);
  EXPECT_EQ(out.connections[0].errors, 1);
  EXPECT_EQ(out.connections[0].age_us, 999);
  EXPECT_EQ(out.prometheus, in.prometheus);
}

TEST(WireCodecTest, StatsReplyHonorsSectionMask) {
  StatsReply in;
  in.sections = kStatsPrometheus;
  in.prometheus = "# TYPE x gauge\nx 1\n";
  // Unrequested sections are not encoded even if populated.
  in.connections.resize(3);
  WireWriter w;
  EncodeStatsReply(&w, in);
  WireReader r(w.str());
  StatsReply out;
  ASSERT_TRUE(DecodeStatsReply(&r, &out));
  EXPECT_TRUE(r.Done());
  EXPECT_EQ(out.sections, kStatsPrometheus);
  EXPECT_TRUE(out.connections.empty());
  EXPECT_EQ(out.prometheus, in.prometheus);
}

// ---------------------------------------------------------------------------
// Live server. Raw-socket helpers for the violations RemoteClient refuses
// to produce.

class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = fd_ >= 0 && ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                                       sizeof(addr)) == 0;
    int one = 1;
    if (connected_) ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void Send(std::string_view bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                         MSG_NOSIGNAL);
      if (n <= 0) return;
      off += static_cast<size_t>(n);
    }
  }

  void SendFrame(MsgType type, uint32_t request_id, std::string_view payload) {
    Send(EncodeFrame(type, request_id, payload));
  }

  /// Hello handshake; returns false if the server rejected it.
  bool Hello() {
    WireWriter w;
    w.U32(kProtocolVersion);
    SendFrame(MsgType::kHello, 1, w.str());
    Frame frame;
    return ReadFrame(&frame) && frame.type == MsgType::kHelloOk;
  }

  /// Blocking read of the next frame. False on EOF/decoder error.
  bool ReadFrame(Frame* out) {
    while (true) {
      switch (decoder_.Pop(out)) {
        case FrameDecoder::Next::kFrame:
          return true;
        case FrameDecoder::Next::kError:
          return false;
        case FrameDecoder::Next::kNeedMore:
          break;
      }
      char buf[4096];
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return false;
      decoder_.Append(buf, static_cast<size_t>(n));
    }
  }

  /// True once the server has closed its end (reads drain to EOF).
  bool ReadUntilEof() {
    char buf[4096];
    while (true) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0) return false;
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  FrameDecoder decoder_;
};

class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto tb = testbed::Testbed::Create();
    ASSERT_TRUE(tb.ok()) << tb.status().ToString();
    tb_ = std::move(*tb);
    ServerOptions options;
    options.max_frame_len = 1 << 20;  // 1 MiB: plenty, and testably small
    ASSERT_TRUE(server_.Start(tb_.get(), options).ok());
    target_ = "127.0.0.1:" + std::to_string(server_.port());
  }
  void TearDown() override { server_.Stop(); }

  std::unique_ptr<RemoteClient> Connect() {
    auto client = RemoteClient::Connect(target_);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  std::unique_ptr<testbed::Testbed> tb_;
  Server server_;
  std::string target_;
};

TEST_F(NetServerTest, RequestBeforeHelloIsRejected) {
  RawConn conn(server_.port());
  ASSERT_TRUE(conn.connected());
  conn.SendFrame(MsgType::kListRules, 9, "");
  Frame frame;
  ASSERT_TRUE(conn.ReadFrame(&frame));
  EXPECT_EQ(frame.type, MsgType::kError);
  EXPECT_EQ(frame.request_id, 9u);
  EXPECT_EQ(DecodeErrorPayload(frame.payload).code(),
            ErrorCode::kProtocolError);
  EXPECT_TRUE(conn.ReadUntilEof());  // handshake failure closes
}

TEST_F(NetServerTest, WrongProtocolVersionIsRejected) {
  RawConn conn(server_.port());
  ASSERT_TRUE(conn.connected());
  WireWriter w;
  w.U32(kProtocolVersion + 1);
  conn.SendFrame(MsgType::kHello, 1, w.str());
  Frame frame;
  ASSERT_TRUE(conn.ReadFrame(&frame));
  EXPECT_EQ(frame.type, MsgType::kError);
  EXPECT_TRUE(conn.ReadUntilEof());
}

TEST_F(NetServerTest, V1ClientGetsCleanVersionMismatchError) {
  // The v2 trace context rides inside existing payloads, so a v1 Hello
  // still parses; the version check is what rejects it — with a real
  // Error frame naming both versions, not a slammed connection.
  RawConn conn(server_.port());
  ASSERT_TRUE(conn.connected());
  WireWriter w;
  w.U32(1);
  conn.SendFrame(MsgType::kHello, 1, w.str());
  Frame frame;
  ASSERT_TRUE(conn.ReadFrame(&frame));
  EXPECT_EQ(frame.type, MsgType::kError);
  EXPECT_EQ(frame.request_id, 1u);
  Status status = DecodeErrorPayload(frame.payload);
  EXPECT_EQ(status.code(), ErrorCode::kProtocolError);
  EXPECT_NE(status.message().find("version"), std::string::npos)
      << status.ToString();
  EXPECT_TRUE(conn.ReadUntilEof());
}

TEST_F(NetServerTest, StatsAnswersWithoutHello) {
  // kStats is the monitoring surface: no handshake, no session. dkb_top
  // and scrapers must be able to poll a server without perturbing it.
  RawConn conn(server_.port());
  ASSERT_TRUE(conn.connected());
  conn.SendFrame(MsgType::kStats, 5, EncodeStatsRequest(kStatsAll));
  Frame frame;
  ASSERT_TRUE(conn.ReadFrame(&frame));
  EXPECT_EQ(frame.type, MsgType::kStatsOk);
  EXPECT_EQ(frame.request_id, 5u);
  WireReader r(frame.payload);
  StatsReply reply;
  ASSERT_TRUE(DecodeStatsReply(&r, &reply));
  EXPECT_EQ(reply.sections, kStatsAll);
  // The server section always carries the lifecycle counters.
  bool saw_uptime = false;
  for (const metrics::MetricSample& s : reply.server) {
    if (s.name == "uptime_us") {
      EXPECT_GT(s.value, 0);
      saw_uptime = true;
    }
  }
  EXPECT_TRUE(saw_uptime);
  // This very connection is in the registry (sessionless, session_id 0).
  ASSERT_FALSE(reply.connections.empty());
  EXPECT_FALSE(reply.prometheus.empty());
  std::string prom_error;
  EXPECT_TRUE(metrics::ValidatePrometheusText(reply.prometheus, &prom_error))
      << prom_error;
}

TEST_F(NetServerTest, RemoteClientFetchesStatsSessionless) {
  auto stats = RemoteClient::FetchStats(target_, kStatsServer);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->sections, kStatsServer);
  EXPECT_FALSE(stats->server.empty());
  // No Hello was sent, so no COW session was ever opened.
  EXPECT_TRUE(tb_->SessionSnapshot().empty());
}

TEST_F(NetServerTest, UnknownTypeByteKeepsConnectionUsable) {
  RawConn conn(server_.port());
  ASSERT_TRUE(conn.connected());
  ASSERT_TRUE(conn.Hello());
  // 0x70 is well-framed but names no request; the server must answer with
  // an Error frame (echoing the id) and keep serving.
  conn.SendFrame(static_cast<MsgType>(0x70), 5, "");
  Frame frame;
  ASSERT_TRUE(conn.ReadFrame(&frame));
  EXPECT_EQ(frame.type, MsgType::kError);
  EXPECT_EQ(frame.request_id, 5u);
  conn.SendFrame(MsgType::kListRules, 6, "");
  ASSERT_TRUE(conn.ReadFrame(&frame));
  EXPECT_EQ(frame.type, MsgType::kRuleList);
  EXPECT_EQ(frame.request_id, 6u);
}

TEST_F(NetServerTest, MalformedPayloadKeepsConnectionUsable) {
  RawConn conn(server_.port());
  ASSERT_TRUE(conn.connected());
  ASSERT_TRUE(conn.Hello());
  // kDefineBase with a garbage payload: well-framed, undecodable.
  conn.SendFrame(MsgType::kDefineBase, 11, "\x01garbage");
  Frame frame;
  ASSERT_TRUE(conn.ReadFrame(&frame));
  EXPECT_EQ(frame.type, MsgType::kError);
  EXPECT_EQ(frame.request_id, 11u);
  conn.SendFrame(MsgType::kListRules, 12, "");
  ASSERT_TRUE(conn.ReadFrame(&frame));
  EXPECT_EQ(frame.type, MsgType::kRuleList);
}

TEST_F(NetServerTest, FramingViolationGetsErrorFrameThenClose) {
  RawConn conn(server_.port());
  ASSERT_TRUE(conn.connected());
  ASSERT_TRUE(conn.Hello());
  // A length prefix below the frame header: unrecoverable.
  std::string bad = {2, 0, 0, 0, 1, 1};
  conn.Send(bad);
  Frame frame;
  ASSERT_TRUE(conn.ReadFrame(&frame));
  EXPECT_EQ(frame.type, MsgType::kError);
  EXPECT_EQ(frame.request_id, 0u);  // no attributable request
  EXPECT_TRUE(conn.ReadUntilEof());
}

TEST_F(NetServerTest, OversizedFrameGetsErrorFrameThenClose) {
  RawConn conn(server_.port());
  ASSERT_TRUE(conn.connected());
  ASSERT_TRUE(conn.Hello());
  // Announce a 2 MiB frame against the server's 1 MiB limit. The server
  // must reject on the prefix alone — we never send the body.
  uint32_t len = 2u << 20;
  char prefix[4];
  std::memcpy(prefix, &len, 4);
  conn.Send(std::string_view(prefix, 4));
  Frame frame;
  ASSERT_TRUE(conn.ReadFrame(&frame));
  EXPECT_EQ(frame.type, MsgType::kError);
  EXPECT_TRUE(conn.ReadUntilEof());
}

TEST_F(NetServerTest, RemoteClientFullSurface) {
  auto client = Connect();
  ASSERT_TRUE(client->Consult("anc(X,Y) :- par(X,Y).\n"
                              "anc(X,Y) :- par(X,Z), anc(Z,Y).\n"
                              "par(a,b). par(b,c).\n")
                  .ok());
  ASSERT_TRUE(client->AddRule("top(X) :- anc(X, c).").ok());

  auto rules = client->ListRules();
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->size(), 3u);

  ASSERT_TRUE(client->RetractRule("top(X) :- anc(X, c).").ok());
  rules = client->ListRules();
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->size(), 2u);

  ASSERT_TRUE(
      client->DefineBase("extra", {DataType::kVarchar, DataType::kVarchar})
          .ok());
  ASSERT_TRUE(
      client->AddFacts("extra", {{Value("x"), Value("y")}}).ok());

  auto rs = client->Query("anc(a, W)", {}, net::kReportNone);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows.size(), 2u);
  EXPECT_GE(rs->compile_us, 0);

  auto batch =
      client->QueryBatch({"anc(a, W)", "anc(b, W)"}, {}, net::kReportNone);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 2u);
  EXPECT_EQ((*batch)[0].rows.size(), 2u);
  EXPECT_EQ((*batch)[1].rows.size(), 1u);

  auto stmt = client->Prepare("anc(a, W)", {});
  ASSERT_TRUE(stmt.ok());
  auto executed = client->Execute({*stmt, *stmt});
  ASSERT_TRUE(executed.ok());
  ASSERT_EQ(executed->size(), 2u);
  EXPECT_EQ((*executed)[0].rows.size(), 2u);

  auto update = client->UpdateStoredDkb();
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(update->rules_stored, 2);

  ASSERT_TRUE(client->ClearWorkspace().ok());
  rules = client->ListRules();
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules->empty());

  // Errors round-trip as typed Statuses, not dead connections.
  auto bad = client->Query("no_such_pred(X)", {}, net::kReportNone);
  EXPECT_FALSE(bad.ok());
  auto after = client->ExecuteSql("SELECT * FROM sys.sessions");
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

TEST_F(NetServerTest, PipelinedResponsesMatchByRequestId) {
  auto client = Connect();
  ASSERT_TRUE(client->Consult("p(a, one). p(b, two). p(c, three).\n").ok());

  // Three distinct in-flight batches, collected in reverse order: each
  // response must carry its own answer, proving request_id matching (and
  // the parked-frame path) rather than arrival-order luck.
  testbed::QueryOptions options;
  auto id1 = client->SendQueryBatch({"p(a, W)"}, options);
  auto id2 = client->SendQueryBatch({"p(b, W)"}, options);
  auto id3 = client->SendQueryBatch({"p(c, W)"}, options);
  ASSERT_TRUE(id1.ok() && id2.ok() && id3.ok());

  auto r3 = client->ReceiveResultSets(*id3);
  auto r1 = client->ReceiveResultSets(*id1);
  auto r2 = client->ReceiveResultSets(*id2);
  ASSERT_TRUE(r3.ok() && r1.ok() && r2.ok());
  ASSERT_EQ((*r1)[0].rows.size(), 1u);
  EXPECT_EQ((*r1)[0].rows[0][0].as_string(), "one");
  EXPECT_EQ((*r2)[0].rows[0][0].as_string(), "two");
  EXPECT_EQ((*r3)[0].rows[0][0].as_string(), "three");
}

TEST_F(NetServerTest, SysConnectionsShowsLiveConnections) {
  auto client = Connect();
  ASSERT_TRUE(client->Consult("p(a, b).\n").ok());
  ASSERT_TRUE(client->Query("p(a, W)", {}, net::kReportNone).ok());

  auto rows = client->ExecuteSql(
      "SELECT connection_id, queries FROM sys.connections");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][1].as_int(), 1);

  // A second connection appears; closing it removes its row.
  {
    auto other = Connect();
    auto two = client->ExecuteSql("SELECT connection_id FROM sys.connections");
    ASSERT_TRUE(two.ok());
    EXPECT_EQ(two->rows.size(), 2u);
  }
  // The destructor's CloseSession is synchronous on the wire, but the
  // server-side teardown races the next query; poll briefly.
  for (int i = 0; i < 100; ++i) {
    auto left = client->ExecuteSql("SELECT connection_id FROM sys.connections");
    ASSERT_TRUE(left.ok());
    if (left->rows.size() == 1u) return;
    usleep(10 * 1000);
  }
  FAIL() << "closed connection still listed in sys.connections";
}

TEST_F(NetServerTest, MutationsPropagateAcrossConnections) {
  auto writer = Connect();
  auto reader = Connect();
  ASSERT_TRUE(writer->Consult("anc(X,Y) :- par(X,Y).\npar(a,b).\n").ok());
  auto rs = reader->Query("anc(a, W)", {}, net::kReportNone);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 1u);
  // Writer adds a fact; the reader's COW session refreshes on next query.
  ASSERT_TRUE(writer->AddFacts("par", {{Value("a"), Value("c")}}).ok());
  rs = reader->Query("anc(a, W)", {}, net::kReportNone);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 2u);
}

}  // namespace
}  // namespace dkb::net
