// Differential property tests: randomized (but seeded, reproducible)
// stratified Datalog programs and data, evaluated under every combination
// of LFP strategy and optimization; all evaluators must agree exactly.
//
// Program shape: binary EDB relations over a small node domain; IDB
// predicates defined by chain-shaped rule bodies (which guarantees safety),
// referencing earlier IDB predicates or themselves (single-predicate
// recursion), optionally guarded by a negated atom on a strictly lower
// stratum.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.h"
#include "testbed/testbed.h"

namespace dkb {
namespace {

using lfp::LfpStrategy;

struct GeneratedCase {
  std::string program;
  std::string query;
};

GeneratedCase GenerateCase(uint64_t seed) {
  Rng rng(seed);
  GeneratedCase out;

  const int num_nodes = static_cast<int>(rng.Uniform(4, 10));
  const int num_edb = static_cast<int>(rng.Uniform(1, 3));
  auto node = [](int64_t i) { return "n" + std::to_string(i); };

  // EDB relations: random sparse graphs.
  for (int e = 0; e < num_edb; ++e) {
    int edges = static_cast<int>(rng.Uniform(num_nodes, 3 * num_nodes));
    for (int i = 0; i < edges; ++i) {
      out.program += "e" + std::to_string(e) + "(" +
                     node(rng.Uniform(0, num_nodes - 1)) + ", " +
                     node(rng.Uniform(0, num_nodes - 1)) + ").\n";
    }
  }

  // IDB predicates p0..pk, stratified by index.
  const int num_idb = static_cast<int>(rng.Uniform(1, 4));
  for (int p = 0; p < num_idb; ++p) {
    int num_rules = static_cast<int>(rng.Uniform(1, 3));
    bool has_base_rule = false;
    for (int r = 0; r < num_rules; ++r) {
      int body_len = static_cast<int>(rng.Uniform(1, 3));
      std::string head = "p" + std::to_string(p) + "(X0, X" +
                         std::to_string(body_len) + ")";
      std::string body;
      bool recursive = false;
      for (int b = 0; b < body_len; ++b) {
        // Choose a body predicate: an EDB relation, an earlier IDB
        // predicate, or (at most once, not in the first rule) p itself.
        std::string pred;
        int64_t pick = rng.Uniform(0, 3);
        if (pick == 0 && p > 0) {
          pred = "p" + std::to_string(rng.Uniform(0, p - 1));
        } else if (pick == 1 && r > 0 && !recursive && has_base_rule) {
          pred = "p" + std::to_string(p);
          recursive = true;
        } else {
          pred = "e" + std::to_string(rng.Uniform(0, num_edb - 1));
        }
        if (b > 0) body += ", ";
        body += pred + "(X" + std::to_string(b) + ", X" +
                std::to_string(b + 1) + ")";
      }
      if (!recursive) has_base_rule = true;
      // Optional negated guard on a strictly lower stratum (EDB only, to
      // keep stratification trivially valid), over already-bound vars.
      if (rng.Bernoulli(0.3)) {
        body += ", not e" + std::to_string(rng.Uniform(0, num_edb - 1)) +
                "(X0, X" + std::to_string(body_len) + ")";
      }
      out.program += head + " :- " + body + ".\n";
    }
  }

  // Query the last IDB predicate; bind the first argument half the time.
  std::string target = "p" + std::to_string(num_idb - 1);
  if (rng.Bernoulli(0.5)) {
    out.query =
        "?- " + target + "(" + node(rng.Uniform(0, num_nodes - 1)) + ", W).";
  } else {
    out.query = "?- " + target + "(X, Y).";
  }
  return out;
}

std::set<std::string> AnswerSet(const QueryResult& result) {
  std::set<std::string> out;
  for (const Tuple& row : result.rows) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    out.insert(key);
  }
  return out;
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, AllEvaluatorsAgree) {
  GeneratedCase gen = GenerateCase(GetParam());
  SCOPED_TRACE("program:\n" + gen.program + "query: " + gen.query);

  auto tb = testbed::Testbed::Create();
  ASSERT_TRUE(tb.ok());
  ASSERT_TRUE((*tb)->Consult(gen.program).ok());

  bool have_reference = false;
  std::set<std::string> reference;
  struct Config {
    bool magic;
    bool supplementary;
  };
  for (auto strategy : {LfpStrategy::kSemiNaive, LfpStrategy::kNaive,
                        LfpStrategy::kNative, LfpStrategy::kNativeTc}) {
    for (Config config :
         {Config{false, false}, Config{true, false}, Config{true, true}}) {
      testbed::QueryOptions opts =
          (config.supplementary ? testbed::QueryOptions::SupplementaryMagic()
           : config.magic       ? testbed::QueryOptions::Magic()
                                : testbed::QueryOptions::SemiNaive())
              .WithStrategy(strategy);
      auto outcome = (*tb)->Query(gen.query, opts);
      ASSERT_TRUE(outcome.ok())
          << lfp::StrategyName(strategy) << " magic=" << config.magic
          << " sup=" << config.supplementary << ": "
          << outcome.status().ToString();
      auto answers = AnswerSet(outcome->result);
      if (!have_reference) {
        reference = answers;
        have_reference = true;
      } else {
        EXPECT_EQ(answers, reference)
            << lfp::StrategyName(strategy) << " magic=" << config.magic
            << " sup=" << config.supplementary;
      }
    }
  }
  // Adaptive and cached paths agree too.
  testbed::QueryOptions adaptive =
      testbed::QueryOptions::Adaptive().WithCache();
  auto first = (*tb)->Query(gen.query, adaptive);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(AnswerSet(first->result), reference);
  auto cached = (*tb)->Query(gen.query, adaptive);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->report.from_cache);
  EXPECT_EQ(AnswerSet(cached->result), reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range(uint64_t{1}, uint64_t{33}));

// The results must also be stable under workspace->stored migration: the
// same program committed to the Stored DKB answers identically.
class StoredMigrationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StoredMigrationTest, WorkspaceAndStoredAnswersMatch) {
  GeneratedCase gen = GenerateCase(GetParam() + 1000);
  auto ws_tb = testbed::Testbed::Create();
  auto st_tb = testbed::Testbed::Create();
  ASSERT_TRUE(ws_tb.ok() && st_tb.ok());
  ASSERT_TRUE((*ws_tb)->Consult(gen.program).ok());
  ASSERT_TRUE((*st_tb)->Consult(gen.program).ok());
  auto update = (*st_tb)->UpdateStoredDkb();
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  (*st_tb)->ClearWorkspace();

  auto from_ws = (*ws_tb)->Query(gen.query);
  auto from_st = (*st_tb)->Query(gen.query);
  ASSERT_TRUE(from_ws.ok()) << from_ws.status().ToString();
  ASSERT_TRUE(from_st.ok()) << from_st.status().ToString();
  EXPECT_EQ(AnswerSet(from_ws->result), AnswerSet(from_st->result));
  // The stored path really extracted rules (workspace is empty).
  EXPECT_GT(from_st->report.compile.rules_extracted_stored, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoredMigrationTest,
                         ::testing::Range(uint64_t{1}, uint64_t{17}));

}  // namespace
}  // namespace dkb
