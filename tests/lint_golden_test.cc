// Golden-output tests for the dkb_lint diagnostic rendering: each of the
// analyzer's diagnostic codes is triggered by a minimal program and the
// rendered human/JSON output is compared byte-for-byte against the
// expected text. Any change to message wording or format shows up here.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "datalog/parser.h"
#include "km/analysis/analyzer.h"
#include "km/analysis/diagnostics.h"

namespace dkb::km::analysis {
namespace {

// Mirrors dkb_lint's program setup: facts define base predicates, the
// program's query (if any) drives the goal-directed passes.
std::string LintHuman(const std::string& text) {
  auto program = datalog::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  AnalyzerInput input;
  input.rules = program->rules;
  for (const datalog::Rule& fact : program->facts) {
    input.base_predicates.insert(fact.head.predicate);
  }
  for (const datalog::Rule& rule : program->rules) {
    input.base_predicates.erase(rule.head.predicate);
  }
  datalog::Atom goal;
  if (!program->queries.empty()) {
    goal = program->queries[0];
    input.goal = &goal;
  }
  AnalysisResult result = AnalyzeProgram(input);
  return RenderHuman(result.diagnostics(), "test.dkb");
}

std::string LintJson(const std::string& text) {
  auto program = datalog::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  AnalyzerInput input;
  input.rules = program->rules;
  for (const datalog::Rule& fact : program->facts) {
    input.base_predicates.insert(fact.head.predicate);
  }
  for (const datalog::Rule& rule : program->rules) {
    input.base_predicates.erase(rule.head.predicate);
  }
  datalog::Atom goal;
  if (!program->queries.empty()) {
    goal = program->queries[0];
    input.goal = &goal;
  }
  AnalysisResult result = AnalyzeProgram(input);
  return RenderJson(result.diagnostics(), "test.dkb");
}

TEST(LintGoldenTest, CleanProgram) {
  EXPECT_EQ(LintHuman("ancestor(X, Y) :- parent(X, Y).\n"
                      "parent(a, b).\n"
                      "?- ancestor(a, W).\n"),
            "test.dkb: no diagnostics\n");
}

TEST(LintGoldenTest, UnstratifiedNegation) {
  EXPECT_EQ(
      LintHuman("win(X) :- edge(X, Y), not win(Y).\n"
                "edge(a, b).\n"
                "edge(b, a).\n"
                "?- win(a).\n"),
      "test.dkb: error[DKB-E001-unstratified-negation] line 1: program is "
      "not stratified: win is negated inside its own recursive clique "
      "(rule: win(X) :- edge(X, Y), not win(Y).)\n"
      "test.dkb: 1 error(s), 0 warning(s), 0 note(s)\n");
}

TEST(LintGoldenTest, DeadRule) {
  EXPECT_EQ(
      LintHuman("ancestor(X, Y) :- parent(X, Y).\n"
                "orphan(X) :- island(X).\n"
                "parent(a, b).\n"
                "island(z).\n"
                "?- ancestor(a, W).\n"),
      "test.dkb: warning[DKB-W003-dead-rule] line 2: rule is dead: orphan "
      "is unreachable from the query goal ancestor(a, W); dropped "
      "(rule: orphan(X) :- island(X).)\n"
      "test.dkb: 0 error(s), 1 warning(s), 0 note(s)\n");
}

TEST(LintGoldenTest, UnsatisfiableBody) {
  EXPECT_EQ(
      LintHuman("big(X) :- num(X), X < 3, X > 5.\n"
                "num(1).\n"
                "?- big(W).\n"),
      "test.dkb: warning[DKB-W004-unsatisfiable-body] line 1: body is "
      "unsatisfiable: integer constraints on X are contradictory (empty "
      "interval [6, 2]); dropped (rule: big(X) :- num(X), X < 3, X > 5.)\n"
      "test.dkb: 0 error(s), 1 warning(s), 0 note(s)\n");
}

TEST(LintGoldenTest, InconsistentAdornment) {
  // The goal binds its argument, but helper is only ever called with every
  // argument free: its magic predicate would be unbound.
  EXPECT_EQ(
      LintHuman("needs_helper(X) :- helper(Y), pair(X, Y).\n"
                "helper(Y) :- item(Y).\n"
                "item(a).\n"
                "pair(b, a).\n"
                "?- needs_helper(b).\n"),
      "test.dkb: warning[DKB-W006-inconsistent-adornment]: predicate "
      "helper is reached with the all-free adornment f although the query "
      "is bound; the magic rewrite cannot restrict it (its magic predicate "
      "would be unbound) and will compute its full extension\n"
      "test.dkb: 0 error(s), 1 warning(s), 0 note(s)\n");
}

TEST(LintGoldenTest, DuplicateRule) {
  EXPECT_EQ(
      LintHuman("path(X, Y) :- edge(X, Y).\n"
                "path(X, Y) :- edge(X, Y).\n"
                "edge(a, b).\n"
                "?- path(a, W).\n"),
      "test.dkb: warning[DKB-W005-duplicate-rule] line 2: rule duplicates "
      "an earlier rule at line 1; dropped "
      "(rule: path(X, Y) :- edge(X, Y).)\n"
      "test.dkb: 0 error(s), 1 warning(s), 0 note(s)\n");
}

TEST(LintGoldenTest, UndefinedPredicate) {
  EXPECT_EQ(
      LintHuman("foo(X) :- missing(X).\n"
                "?- foo(W).\n"),
      "test.dkb: error[DKB-E002-undefined-predicate] line 1: predicate "
      "missing is neither defined by a rule nor a known base predicate "
      "(rule: foo(X) :- missing(X).)\n"
      "test.dkb: 1 error(s), 0 warning(s), 0 note(s)\n");
}

TEST(LintGoldenTest, JsonClean) {
  EXPECT_EQ(LintJson("ancestor(X, Y) :- parent(X, Y).\n"
                     "parent(a, b).\n"
                     "?- ancestor(a, W).\n"),
            "{\"source\": \"test.dkb\", \"diagnostics\": [], "
            "\"errors\": 0, \"warnings\": 0, \"notes\": 0}\n");
}

TEST(LintGoldenTest, JsonUnsatisfiableBody) {
  EXPECT_EQ(
      LintJson("big(X) :- num(X), X < 3, X > 5.\n"
               "num(1).\n"
               "?- big(W).\n"),
      "{\"source\": \"test.dkb\", \"diagnostics\": [{\"code\": "
      "\"DKB-W004-unsatisfiable-body\", \"severity\": \"warning\", "
      "\"predicate\": \"big\", \"line\": 1, \"rule\": "
      "\"big(X) :- num(X), X < 3, X > 5.\", \"message\": \"body is "
      "unsatisfiable: integer constraints on X are contradictory (empty "
      "interval [6, 2]); dropped\"}], "
      "\"errors\": 0, \"warnings\": 1, \"notes\": 0}\n");
}

// Every diagnostic code produced by the analyzer is distinct and stable —
// the codes are part of the tool's public contract.
TEST(LintGoldenTest, CodesAreStable) {
  EXPECT_STREQ(kCodeUnstratified, "DKB-E001-unstratified-negation");
  EXPECT_STREQ(kCodeUndefinedPredicate, "DKB-E002-undefined-predicate");
  EXPECT_STREQ(kCodeDeadRule, "DKB-W003-dead-rule");
  EXPECT_STREQ(kCodeUnsatisfiableBody, "DKB-W004-unsatisfiable-body");
  EXPECT_STREQ(kCodeDuplicateRule, "DKB-W005-duplicate-rule");
  EXPECT_STREQ(kCodeInconsistentAdornment, "DKB-W006-inconsistent-adornment");
}

}  // namespace
}  // namespace dkb::km::analysis
