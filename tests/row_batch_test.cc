// RowBatch unit tests plus batch edge cases through Table::ScanBatch /
// AppendBatch and the batch-at-a-time operators: empty tables,
// all-tombstone scan windows, batch boundaries at exactly kCapacity,
// single-row relations, NULL keys in hash-join probes, and serial-vs-morsel
// determinism of the parallel scan path.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/parallelism.h"
#include "common/row_batch.h"
#include "common/thread_pool.h"
#include "exec/executor.h"
#include "exec/plan.h"
#include "rdbms/database.h"
#include "storage/table.h"

namespace dkb {
namespace {

Schema IntStrSchema() {
  return Schema({{"k", DataType::kInteger}, {"v", DataType::kVarchar}});
}

// ---------------------------------------------------------------------------
// RowBatch container semantics
// ---------------------------------------------------------------------------

TEST(RowBatchTest, AppendAndAccess) {
  RowBatch b;
  b.Reset(2);
  EXPECT_TRUE(b.empty());
  b.AppendRow(Tuple{Value(int64_t{1}), Value("x")});
  b.AppendRow(Tuple{Value(int64_t{2}), Value("y")});
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.physical_size(), 2u);
  EXPECT_EQ(b.At(0, 0), Value(int64_t{1}));
  EXPECT_EQ(b.At(1, 1), Value("y"));
  EXPECT_EQ(b.MaterializeTuple(1), (Tuple{Value(int64_t{2}), Value("y")}));
}

TEST(RowBatchTest, ResetRetainsColumnCountChange) {
  RowBatch b;
  b.Reset(3);
  b.AppendRow(Tuple{Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{3})});
  b.Reset(1);
  EXPECT_EQ(b.num_columns(), 1u);
  EXPECT_TRUE(b.empty());
  b.AppendRow(Tuple{Value("only")});
  EXPECT_EQ(b.At(0, 0), Value("only"));
}

TEST(RowBatchTest, SelectionComposesAndStacks) {
  RowBatch b;
  b.Reset(1);
  for (int64_t i = 0; i < 6; ++i) b.AppendRow(Tuple{Value(i)});
  // Keep even logical rows: 0, 2, 4.
  b.ComposeSelection({0, 2, 4});
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b.physical_size(), 6u);
  EXPECT_EQ(b.At(1, 0), Value(int64_t{2}));
  // Second filter sees logical rows of the first: keep last two -> 2, 4.
  b.ComposeSelection({1, 2});
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b.At(0, 0), Value(int64_t{2}));
  EXPECT_EQ(b.At(1, 0), Value(int64_t{4}));
  EXPECT_EQ(b.PhysicalIndex(1), 4u);
}

TEST(RowBatchTest, TruncateWithAndWithoutSelection) {
  RowBatch b;
  b.Reset(1);
  for (int64_t i = 0; i < 5; ++i) b.AppendRow(Tuple{Value(i)});
  b.Truncate(3);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b.At(2, 0), Value(int64_t{2}));
  b.ComposeSelection({1, 2});
  b.Truncate(1);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b.At(0, 0), Value(int64_t{1}));
  // Truncate past the visible count is a no-op.
  b.Truncate(10);
  EXPECT_EQ(b.size(), 1u);
}

TEST(RowBatchTest, AppendConcatJoinsRows) {
  RowBatch right;
  right.Reset(1);
  right.AppendRow(Tuple{Value("r0")});
  right.AppendRow(Tuple{Value("r1")});
  right.ComposeSelection({1});  // only r1 visible

  RowBatch out;
  out.Reset(2);
  out.AppendConcat(Tuple{Value(int64_t{7})}, right, 0);
  out.AppendConcat(Tuple{Value(int64_t{8})}, Tuple{Value("t")});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.MaterializeTuple(0), (Tuple{Value(int64_t{7}), Value("r1")}));
  EXPECT_EQ(out.MaterializeTuple(1), (Tuple{Value(int64_t{8}), Value("t")}));
}

// ---------------------------------------------------------------------------
// Table::ScanBatch / AppendBatch edge cases
// ---------------------------------------------------------------------------

TEST(ScanBatchTest, EmptyTable) {
  Table t("t", IntStrSchema());
  RowBatch b;
  RowId cursor = t.ScanBatch(0, &b);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(cursor, 0u);
}

TEST(ScanBatchTest, SingleRow) {
  Table t("t", IntStrSchema());
  ASSERT_TRUE(t.Insert(Tuple{Value(int64_t{1}), Value("a")}).ok());
  RowBatch b;
  RowId cursor = t.ScanBatch(0, &b);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b.At(0, 1), Value("a"));
  cursor = t.ScanBatch(cursor, &b);
  EXPECT_TRUE(b.empty());
}

TEST(ScanBatchTest, BoundaryAtExactlyCapacity) {
  Table t("t", Schema({{"k", DataType::kInteger}}));
  for (size_t i = 0; i < RowBatch::kCapacity; ++i) {
    ASSERT_TRUE(t.Insert(Tuple{Value(static_cast<int64_t>(i))}).ok());
  }
  RowBatch b;
  RowId cursor = t.ScanBatch(0, &b);
  EXPECT_EQ(b.size(), RowBatch::kCapacity);
  EXPECT_EQ(cursor, RowBatch::kCapacity);
  cursor = t.ScanBatch(cursor, &b);
  EXPECT_TRUE(b.empty());
}

TEST(ScanBatchTest, AllTombstoneWindow) {
  Table t("t", Schema({{"k", DataType::kInteger}}));
  const size_t n = RowBatch::kCapacity * 2 + 100;
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(t.Insert(Tuple{Value(static_cast<int64_t>(i))}).ok());
  }
  // Tombstone more than two full batch windows at the front; only the tail
  // survives.
  const size_t deleted = RowBatch::kCapacity * 2;
  for (size_t i = 0; i < deleted; ++i) t.Delete(static_cast<RowId>(i));
  size_t seen = 0;
  RowBatch b;
  RowId cursor = 0;
  while (true) {
    cursor = t.ScanBatch(cursor, &b);
    if (b.empty()) break;
    for (size_t i = 0; i < b.size(); ++i) {
      EXPECT_EQ(b.At(i, 0),
                Value(static_cast<int64_t>(deleted + seen + i)));
    }
    seen += b.size();
  }
  EXPECT_EQ(seen, n - deleted);
}

TEST(AppendBatchTest, ArityAndTypeChecked) {
  Table t("t", IntStrSchema());
  RowBatch wrong_arity;
  wrong_arity.Reset(1);
  wrong_arity.AppendRow(Tuple{Value(int64_t{1})});
  EXPECT_EQ(t.AppendBatch(wrong_arity).code(), StatusCode::kInvalidArgument);

  RowBatch wrong_type;
  wrong_type.Reset(2);
  wrong_type.AppendRow(Tuple{Value("not-an-int"), Value("v")});
  EXPECT_EQ(t.AppendBatch(wrong_type).code(), StatusCode::kTypeError);
  EXPECT_EQ(t.num_tuples(), 0u);

  RowBatch ok;
  ok.Reset(2);
  ok.AppendRow(Tuple{Value(int64_t{1}), Value("v")});
  ok.AppendRow(Tuple{Value(), Value()});  // NULLs pass any column type
  ASSERT_TRUE(t.AppendBatch(ok).ok());
  EXPECT_EQ(t.num_tuples(), 2u);
}

TEST(AppendBatchTest, RespectsSelection) {
  Table t("t", Schema({{"k", DataType::kInteger}}));
  RowBatch b;
  b.Reset(1);
  for (int64_t i = 0; i < 4; ++i) b.AppendRow(Tuple{Value(i)});
  b.ComposeSelection({1, 3});
  ASSERT_TRUE(t.AppendBatch(b).ok());
  EXPECT_EQ(t.num_tuples(), 2u);
}

TEST(AppendBatchTest, StoredVarcharsAreInterned) {
  Table t("t", IntStrSchema());
  RowBatch b;
  b.Reset(2);
  b.AppendRow(Tuple{Value(int64_t{1}), Value("intern-me")});
  ASSERT_TRUE(t.AppendBatch(b).ok());
  RowBatch scan;
  t.ScanBatch(0, &scan);
  ASSERT_EQ(scan.size(), 1u);
  EXPECT_TRUE(scan.At(0, 1).is_interned());
  EXPECT_EQ(scan.At(0, 1), Value("intern-me"));
}

// ---------------------------------------------------------------------------
// Batch hash-join probes with NULL keys
// ---------------------------------------------------------------------------

class NullKeyJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Run("CREATE TABLE r (k INT, a VARCHAR)");
    Run("CREATE TABLE s (k INT, b VARCHAR)");
    Run("INSERT INTO r VALUES (1, 'r1'), (NULL, 'rnull'), (2, 'r2')");
    Run("INSERT INTO s VALUES (1, 's1'), (NULL, 'snull'), (3, 's3')");
  }

  void Run(const std::string& sql) {
    auto r = db_.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  }

  size_t CountRows(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    return r.ok() ? r->rows.size() : 0;
  }

  Database db_;
};

TEST_F(NullKeyJoinTest, NullKeysKeepEngineSemantics) {
  // This engine's joins compare whole key tuples, so NULL matches NULL
  // (one r NULL row x one s NULL row) and matches nothing else. The batch
  // probe path must preserve exactly that.
  EXPECT_EQ(CountRows("SELECT r.a, s.b FROM r, s WHERE r.k = s.k"), 2u);
  EXPECT_EQ(CountRows("SELECT r.a, s.b FROM r, s WHERE r.k = s.k AND "
                      "s.b = 'snull'"),
            1u);
}

// ---------------------------------------------------------------------------
// Morsel-parallel scan determinism on the batch engine
// ---------------------------------------------------------------------------

TEST(ParallelBatchTest, MorselScanMatchesSerialOrder) {
  // Each gtest case runs in its own process under ctest, so the global pool
  // has not been constructed yet; size it explicitly for this test.
  setenv("DKB_THREADS", "3", 1);
  if (GlobalThreadPool().num_threads() == 0) {
    GTEST_SKIP() << "global pool already initialized without workers";
  }
  Catalog catalog;
  auto created =
      catalog.CreateTable("big", Schema({{"k", DataType::kInteger}}));
  ASSERT_TRUE(created.ok());
  Table* table = &(*created)->shard(0);
  const int64_t n = 20000;
  for (int64_t i = 0; i < n; ++i) table->InsertUnchecked({Value(i)});

  ParallelismPolicy& tuning = GlobalParallelismPolicy();
  const ParallelismPolicy saved = tuning;
  tuning.seq_scan_min_rows = 1;
  tuning.morsel_rows = 512;

  exec::ExecStats stats;
  auto drain = [&]() {
    exec::SeqScanNode scan(table, nullptr, &stats);
    std::vector<int64_t> keys;
    EXPECT_TRUE(scan.Open().ok());
    RowBatch batch;
    while (true) {
      auto more = scan.NextBatch(&batch);
      ASSERT_TRUE(more.ok()) << more.status().ToString();
      if (!*more) break;
      for (size_t i = 0; i < batch.size(); ++i) {
        keys.push_back(batch.At(i, 0).as_int());
      }
    }
    scan.Close();
    // Morsel buffers concatenate in morsel order: output is the serial row
    // order, deterministically, no matter how many workers ran.
    ASSERT_EQ(keys.size(), static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) EXPECT_EQ(keys[i], i);
  };
  drain();
  drain();  // re-open: same result
  EXPECT_GT(stats.morsels.load(), 0);
  tuning = saved;
}

}  // namespace
}  // namespace dkb
