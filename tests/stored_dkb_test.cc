#include <gtest/gtest.h>

#include <algorithm>

#include "datalog/parser.h"
#include "km/stored_dkb.h"
#include "km/update.h"
#include "km/workspace.h"
#include "rdbms/database.h"

namespace dkb::km {
namespace {

datalog::Rule R(const std::string& text) {
  auto rule = datalog::ParseRule(text);
  EXPECT_TRUE(rule.ok()) << rule.status().ToString();
  return *rule;
}

class StoredDkbTest : public ::testing::Test {
 protected:
  void Init(StoredDkb::Options options = {}) {
    stored_ = std::make_unique<StoredDkb>(&db_, options);
    ASSERT_TRUE(stored_->Initialize().ok());
  }

  /// Commits rules through the update processor.
  void Commit(const std::vector<std::string>& rule_texts) {
    Workspace ws;
    for (const std::string& text : rule_texts) {
      ASSERT_TRUE(ws.AddRule(R(text)).ok());
    }
    UpdateProcessor proc(stored_.get());
    auto stats = proc.Update(ws);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  }

  Database db_;
  std::unique_ptr<StoredDkb> stored_;
};

TEST_F(StoredDkbTest, InitializeCreatesRelations) {
  Init();
  for (const char* table :
       {"idbrel", "idbcol", "rulesource", "reachablepreds", "edbrel",
        "edbcol"}) {
    EXPECT_TRUE(db_.catalog().HasTable(table)) << table;
  }
}

TEST_F(StoredDkbTest, DefineBaseAndInsertFacts) {
  Init();
  ASSERT_TRUE(stored_
                  ->DefineBasePredicate(
                      "parent", {DataType::kVarchar, DataType::kVarchar})
                  .ok());
  EXPECT_TRUE(stored_->HasBasePredicate("parent"));
  EXPECT_FALSE(stored_->HasBasePredicate("nope"));
  ASSERT_TRUE(
      stored_->InsertFacts("parent", {{Value("a"), Value("b")}}).ok());
  auto count = db_.QueryCount("SELECT COUNT(*) FROM edb_parent");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1);
  // Redefinition fails; inserting into unknown predicate fails.
  EXPECT_FALSE(stored_->DefineBasePredicate("parent", {}).ok());
  EXPECT_FALSE(stored_->InsertFacts("nope", {}).ok());
  // Type-violating fact fails.
  EXPECT_FALSE(
      stored_->InsertFacts("parent", {{Value(int64_t{1}), Value("b")}})
          .ok());
  ASSERT_TRUE(stored_->ClearFacts("parent").ok());
  EXPECT_EQ(*db_.QueryCount("SELECT COUNT(*) FROM edb_parent"), 0);
}

TEST_F(StoredDkbTest, EdbDictionaryRoundTrip) {
  Init();
  ASSERT_TRUE(stored_
                  ->DefineBasePredicate(
                      "weight", {DataType::kVarchar, DataType::kInteger})
                  .ok());
  auto dict = stored_->ReadEdbDictionary({"weight", "ghost"});
  ASSERT_TRUE(dict.ok());
  ASSERT_EQ(dict->size(), 1u);
  EXPECT_EQ(dict->at("weight"),
            (PredicateTypes{DataType::kVarchar, DataType::kInteger}));
}

TEST_F(StoredDkbTest, StoreRuleSourceDedupes) {
  Init();
  auto first = stored_->StoreRuleSource(R("p(X,Y) :- e(X,Y)."));
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(*first);
  auto second = stored_->StoreRuleSource(R("p(X,Y) :- e(X,Y)."));
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(*second);
  auto n = stored_->NumStoredRules();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1);
}

TEST_F(StoredDkbTest, CommitPopulatesDictionariesAndClosure) {
  Init();
  ASSERT_TRUE(stored_
                  ->DefineBasePredicate(
                      "e", {DataType::kVarchar, DataType::kVarchar})
                  .ok());
  Commit({"a(X,Y) :- b(X,Y).", "b(X,Y) :- e(X,Y)."});
  // IDB dictionary has both predicates.
  auto dict = stored_->ReadIdbDictionary({"a", "b"});
  ASSERT_TRUE(dict.ok());
  EXPECT_EQ(dict->size(), 2u);
  // Compiled form: a reaches b and e.
  auto reach = stored_->StoredReachable({"a"});
  ASSERT_TRUE(reach.ok());
  EXPECT_EQ(*reach, (std::set<std::string>{"b", "e"}));
  // Upstream of b is a.
  auto up = stored_->StoredUpstream({"b"});
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(*up, (std::set<std::string>{"a"}));
}

TEST_F(StoredDkbTest, ExtractRelevantRulesCompiledForm) {
  Init();
  ASSERT_TRUE(stored_
                  ->DefineBasePredicate(
                      "e", {DataType::kVarchar, DataType::kVarchar})
                  .ok());
  Commit({"a(X,Y) :- b(X,Y).", "b(X,Y) :- e(X,Y).",
          "other(X,Y) :- e(X,Y)."});
  auto rules = stored_->ExtractRelevantRules({"a"});
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_EQ(rules->size(), 2u);  // a's and b's rules, not other's
  // Extraction for the inner predicate only returns its rule.
  auto inner = stored_->ExtractRelevantRules({"b"});
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(inner->size(), 1u);
}

TEST_F(StoredDkbTest, ExtractionUsesIndexes) {
  Init();
  ASSERT_TRUE(stored_
                  ->DefineBasePredicate(
                      "e", {DataType::kVarchar, DataType::kVarchar})
                  .ok());
  // 60 disconnected rules + one small relevant chain.
  std::vector<std::string> rules = {"a(X,Y) :- b(X,Y).",
                                    "b(X,Y) :- e(X,Y)."};
  for (int i = 0; i < 60; ++i) {
    rules.push_back("f" + std::to_string(i) + "(X,Y) :- e(X,Y).");
  }
  Commit(rules);
  db_.stats().Reset();
  auto extracted = stored_->ExtractRelevantRules({"a"});
  ASSERT_TRUE(extracted.ok());
  EXPECT_EQ(extracted->size(), 2u);
  // The extraction query must not scan the full rulesource relation: index
  // probes only (plus whatever the UNION branch scans — also indexed).
  EXPECT_EQ(db_.stats().rows_scanned, 0);
  EXPECT_GT(db_.stats().index_probes, 0);
}

TEST_F(StoredDkbTest, NonCompiledModeWalksFrontier) {
  Init(StoredDkb::Options{.compiled_rule_storage = false,
                          .index_edb_first_column = true});
  ASSERT_TRUE(stored_
                  ->DefineBasePredicate(
                      "e", {DataType::kVarchar, DataType::kVarchar})
                  .ok());
  Commit({"a(X,Y) :- b(X,Y).", "b(X,Y) :- c(X,Y).", "c(X,Y) :- e(X,Y).",
          "zz(X,Y) :- e(X,Y)."});
  // reachablepreds stays empty in this mode.
  EXPECT_EQ(*db_.QueryCount("SELECT COUNT(*) FROM reachablepreds"), 0);
  auto rules = stored_->ExtractRelevantRules({"a"});
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->size(), 3u);
}

TEST_F(StoredDkbTest, CompiledAndNonCompiledExtractionAgree) {
  // Build the same rule base in both modes and compare extraction results.
  std::vector<std::string> rules = {
      "a(X,Y) :- b(X,Y).",      "a(X,Y) :- c(X,Y).",
      "b(X,Y) :- d(X,Y).",      "c(X,Y) :- e(X,Y).",
      "d(X,Y) :- e(X,Y).",      "loner(X,Y) :- e(X,Y).",
  };
  std::set<std::string> compiled_texts;
  std::set<std::string> walked_texts;
  {
    Init();
    ASSERT_TRUE(stored_
                    ->DefineBasePredicate(
                        "e", {DataType::kVarchar, DataType::kVarchar})
                    .ok());
    Commit(rules);
    auto extracted = stored_->ExtractRelevantRules({"a"});
    ASSERT_TRUE(extracted.ok());
    for (const auto& rule : *extracted) compiled_texts.insert(rule.ToString());
  }
  Database fresh;
  StoredDkb walked(&fresh, StoredDkb::Options{false, true});
  ASSERT_TRUE(walked.Initialize().ok());
  ASSERT_TRUE(walked
                  .DefineBasePredicate(
                      "e", {DataType::kVarchar, DataType::kVarchar})
                  .ok());
  Workspace ws;
  for (const std::string& text : rules) ASSERT_TRUE(ws.AddRule(R(text)).ok());
  UpdateProcessor proc(&walked);
  ASSERT_TRUE(proc.Update(ws).ok());
  auto extracted = walked.ExtractRelevantRules({"a"});
  ASSERT_TRUE(extracted.ok());
  for (const auto& rule : *extracted) walked_texts.insert(rule.ToString());
  EXPECT_EQ(compiled_texts, walked_texts);
  EXPECT_EQ(compiled_texts.size(), 5u);
}

TEST_F(StoredDkbTest, IncrementalUpdateExtendsUpstreamReachability) {
  Init();
  ASSERT_TRUE(stored_
                  ->DefineBasePredicate(
                      "e", {DataType::kVarchar, DataType::kVarchar})
                  .ok());
  ASSERT_TRUE(stored_
                  ->DefineBasePredicate(
                      "g", {DataType::kVarchar, DataType::kVarchar})
                  .ok());
  // First commit: s depends on p; w is an unrelated branch under s.
  Commit({"s(X,Y) :- p(X,Y).", "s(X,Y) :- w(X,Y).", "p(X,Y) :- e(X,Y).",
          "w(X,Y) :- e(X,Y)."});
  // Second commit adds a new rule giving p a new dependency on q.
  Commit({"p(X,Y) :- q(X,Y).", "q(X,Y) :- g(X,Y)."});
  auto reach = stored_->StoredReachable({"s"});
  ASSERT_TRUE(reach.ok());
  // s must now reach q and g (through p) while keeping w and e.
  EXPECT_EQ(*reach,
            (std::set<std::string>{"p", "q", "w", "e", "g"}));
}

TEST_F(StoredDkbTest, UpdateStatsBreakdownPopulated) {
  Init();
  ASSERT_TRUE(stored_
                  ->DefineBasePredicate(
                      "e", {DataType::kVarchar, DataType::kVarchar})
                  .ok());
  Workspace ws;
  ASSERT_TRUE(ws.AddRule(R("a(X,Y) :- b(X,Y).")).ok());
  ASSERT_TRUE(ws.AddRule(R("b(X,Y) :- e(X,Y).")).ok());
  UpdateProcessor proc(stored_.get());
  auto stats = proc.Update(ws);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rules_stored, 2);
  EXPECT_EQ(stats->composite_rules, 2);
  EXPECT_EQ(stats->closure_edges, 3);  // a->b, a->e, b->e
  EXPECT_GE(stats->total_us(), 0);
}

TEST_F(StoredDkbTest, UpdateWithUnknownBasePredicateFails) {
  Init();
  Workspace ws;
  ASSERT_TRUE(ws.AddRule(R("a(X,Y) :- ghost(X,Y).")).ok());
  UpdateProcessor proc(stored_.get());
  auto stats = proc.Update(ws);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kSemanticError);
}

TEST_F(StoredDkbTest, UpdateIsIdempotent) {
  Init();
  ASSERT_TRUE(stored_
                  ->DefineBasePredicate(
                      "e", {DataType::kVarchar, DataType::kVarchar})
                  .ok());
  Commit({"a(X,Y) :- e(X,Y)."});
  Commit({"a(X,Y) :- e(X,Y)."});  // same rule again
  EXPECT_EQ(*stored_->NumStoredRules(), 1);
  EXPECT_EQ(*db_.QueryCount(
                "SELECT COUNT(*) FROM reachablepreds WHERE frompredname = "
                "'a'"),
            1);
}

}  // namespace
}  // namespace dkb::km
