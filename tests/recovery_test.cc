// Crash recovery: a child process applies a workload through a WAL-enabled
// testbed and dies by SIGKILL; the parent recovers from the surviving
// wal_dir and must answer every query exactly like an in-memory oracle that
// applied the same operations without crashing.
//
// Every operation below returns only after its redo record is durable
// (log-before-apply + group-commit fsync), so "the child finished the
// workload and then was killed" implies "recovery reproduces the workload".

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "testbed/testbed.h"
#include "workload/data_gen.h"
#include "workload/queries.h"

namespace dkb::testbed {
namespace {

/// A private empty directory under the test temp root.
std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::remove((dir + "/dkb.wal").c_str());
  std::remove((dir + "/dkb.ckpt").c_str());
  ::rmdir(dir.c_str());
  return dir;
}

std::set<std::string> AnswerSet(const QueryResult& result) {
  std::set<std::string> out;
  for (const Tuple& row : result.rows) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    out.insert(key);
  }
  return out;
}

/// Phase 1 exercises Consult, DefineBase, AddFacts, UpdateStoredDkb, and
/// AddRule; phase 2 adds RetractRule, more AddFacts, and raw SQL — together
/// they cover every WalRecordKind except kClearWorkspace (tested
/// separately).
Status ApplyPhase1(Testbed* tb) {
  workload::EdgeSet edges = workload::MakeFullBinaryTrees(1, 5);
  DKB_RETURN_IF_ERROR(tb->Consult(workload::AncestorRules()));
  DKB_RETURN_IF_ERROR(
      tb->DefineBase("parent", {DataType::kVarchar, DataType::kVarchar}));
  DKB_RETURN_IF_ERROR(tb->AddFacts("parent", edges.ToTuples()));
  DKB_RETURN_IF_ERROR(tb->UpdateStoredDkb().status());
  DKB_RETURN_IF_ERROR(tb->AddRule("self(X) :- parent(X, Y)."));
  return Status::OK();
}

Status ApplyPhase2(Testbed* tb) {
  DKB_RETURN_IF_ERROR(tb->RetractRule("self(X) :- parent(X, Y)."));
  std::vector<Tuple> extra;
  for (int i = 0; i < 10; ++i) {
    extra.push_back({Value(workload::TreeNodeName(0, 30)),
                     Value("extra" + std::to_string(i))});
  }
  DKB_RETURN_IF_ERROR(tb->AddFacts("parent", extra));
  DKB_RETURN_IF_ERROR(
      tb->ExecuteSql("CREATE TABLE audit (who VARCHAR, n INTEGER)").status());
  DKB_RETURN_IF_ERROR(
      tb->ExecuteSql("INSERT INTO audit VALUES ('alice', 1), ('bob', 2)")
          .status());
  return Status::OK();
}

/// Queries whose sorted answers define "the same state" for the oracle diff.
std::vector<std::set<std::string>> StateFingerprint(Testbed* tb) {
  std::vector<std::set<std::string>> out;
  std::string root = workload::TreeNodeName(0, 0);
  auto q1 = tb->Query("ancestor('" + root + "', W)");
  EXPECT_TRUE(q1.ok()) << q1.status().ToString();
  out.push_back(q1.ok() ? AnswerSet(q1->result) : std::set<std::string>{});
  auto q2 = tb->ExecuteSql("SELECT who, n FROM audit");
  out.push_back(q2.ok() ? AnswerSet(*q2) : std::set<std::string>{});
  std::vector<std::string> rules = tb->ListRuleTexts();
  out.emplace_back(rules.begin(), rules.end());
  return out;
}

/// Forks; the child runs `work` against a WAL-enabled testbed in `dir` and
/// kills itself with SIGKILL the instant the workload returns OK (exit 3 on
/// any failure). Returns true iff the child died by SIGKILL.
bool RunChildAndKill(const std::string& dir,
                     const std::function<Status(Testbed*)>& work) {
  pid_t pid = fork();
  if (pid < 0) return false;
  if (pid == 0) {
    auto tb = Testbed::Create(TestbedOptions{}.WithWalDir(dir));
    if (!tb.ok()) _exit(2);
    Status s = work(tb->get());
    if (!s.ok()) _exit(3);
    // No destructors, no flushes beyond what each op already waited for:
    // the process vanishes exactly as in a power cut.
    ::raise(SIGKILL);
    _exit(4);  // unreachable
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return false;
  EXPECT_TRUE(WIFSIGNALED(status))
      << "child exited with code "
      << (WIFEXITED(status) ? WEXITSTATUS(status) : -1);
  return WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
}

TEST(RecoveryTest, Kill9RecoveryMatchesOracle) {
  std::string dir = FreshDir("recovery_kill9");
  ASSERT_TRUE(RunChildAndKill(dir, [](Testbed* tb) {
    DKB_RETURN_IF_ERROR(ApplyPhase1(tb));
    return ApplyPhase2(tb);
  }));

  // Recovery: same wal_dir, no checkpoint was ever written, so the entire
  // state is rebuilt from the WAL.
  auto recovered = Testbed::Create(TestbedOptions{}.WithWalDir(dir));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  // Oracle: the identical operations applied in-memory, no crash.
  auto oracle = Testbed::Create();
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE(ApplyPhase1(oracle->get()).ok());
  ASSERT_TRUE(ApplyPhase2(oracle->get()).ok());

  EXPECT_EQ(StateFingerprint(recovered->get()),
            StateFingerprint(oracle->get()));
}

TEST(RecoveryTest, CheckpointThenMoreWritesThenKill) {
  std::string dir = FreshDir("recovery_ckpt");
  ASSERT_TRUE(RunChildAndKill(dir, [](Testbed* tb) {
    DKB_RETURN_IF_ERROR(ApplyPhase1(tb));
    // The checkpoint truncates the WAL; phase 2 lands in the (short) tail.
    DKB_RETURN_IF_ERROR(tb->Checkpoint());
    return ApplyPhase2(tb);
  }));

  auto recovered = Testbed::Create(TestbedOptions{}.WithWalDir(dir));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // Recovery went through the checkpoint: sys-level stats must show it.
  auto ckpt = (*recovered)->CheckpointSnapshot();
  EXPECT_TRUE(ckpt.exists);
  auto wal = (*recovered)->WalSnapshot();
  EXPECT_TRUE(wal.enabled);
  EXPECT_GT(wal.last_lsn, ckpt.last_lsn);

  auto oracle = Testbed::Create();
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE(ApplyPhase1(oracle->get()).ok());
  ASSERT_TRUE(ApplyPhase2(oracle->get()).ok());

  EXPECT_EQ(StateFingerprint(recovered->get()),
            StateFingerprint(oracle->get()));
}

TEST(RecoveryTest, WritesAfterRecoveryAreDurableAcrossASecondCrash) {
  std::string dir = FreshDir("recovery_twice");
  ASSERT_TRUE(RunChildAndKill(dir, ApplyPhase1));

  // Crash again after writing through a *recovered* testbed: LSNs must keep
  // ascending across the first crash for the second tail to replay.
  ASSERT_TRUE(RunChildAndKill(dir, ApplyPhase2));

  auto recovered = Testbed::Create(TestbedOptions{}.WithWalDir(dir));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  auto oracle = Testbed::Create();
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE(ApplyPhase1(oracle->get()).ok());
  ASSERT_TRUE(ApplyPhase2(oracle->get()).ok());
  EXPECT_EQ(StateFingerprint(recovered->get()),
            StateFingerprint(oracle->get()));
}

TEST(RecoveryTest, CleanRestartReplaysClearWorkspace) {
  std::string dir = FreshDir("recovery_clear");
  {
    auto tb = Testbed::Create(TestbedOptions{}.WithWalDir(dir));
    ASSERT_TRUE(tb.ok()) << tb.status().ToString();
    ASSERT_TRUE(ApplyPhase1(tb->get()).ok());
    (*tb)->ClearWorkspace();
    // Clean shutdown (destructor runs) — restart still goes through WAL
    // replay, exercising kClearWorkspace.
  }
  auto recovered = Testbed::Create(TestbedOptions{}.WithWalDir(dir));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE((*recovered)->ListRuleTexts().empty());
  // Stored facts were committed by UpdateStoredDkb and survive the
  // workspace clear.
  std::string root = workload::TreeNodeName(0, 0);
  auto q = (*recovered)->Query("ancestor('" + root + "', W)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->result.rows.size(), 30u);
}

}  // namespace
}  // namespace dkb::testbed
