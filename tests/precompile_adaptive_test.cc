#include <gtest/gtest.h>

#include <set>

#include "testbed/testbed.h"
#include "workload/data_gen.h"
#include "workload/queries.h"

namespace dkb::testbed {
namespace {

std::set<std::string> AnswerSet(const QueryResult& result) {
  std::set<std::string> out;
  for (const Tuple& row : result.rows) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    out.insert(key);
  }
  return out;
}

class PrecompileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto tb = Testbed::Create();
    ASSERT_TRUE(tb.ok());
    tb_ = std::move(*tb);
    ASSERT_TRUE(tb_->Consult(workload::AncestorRules() +
                             "parent(a, b).\nparent(b, c).\nparent(b, d).\n")
                    .ok());
  }

  std::unique_ptr<Testbed> tb_;
};

TEST_F(PrecompileTest, SecondQueryHitsCache) {
  QueryOptions opts = QueryOptions::SemiNaive().WithCache();
  auto first = tb_->Query("?- ancestor(a, W).", opts);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->report.from_cache);
  auto second = tb_->Query("?- ancestor(a, W).", opts);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->report.from_cache);
  EXPECT_EQ(second->report.compile.total_us(), 0);
  EXPECT_EQ(AnswerSet(first->result), AnswerSet(second->result));
  EXPECT_EQ(tb_->query_cache().stats().hits, 1);
  EXPECT_EQ(tb_->query_cache().stats().misses, 1);
}

TEST_F(PrecompileTest, DifferentGoalsAndOptionsMiss) {
  QueryOptions plain = QueryOptions::SemiNaive().WithCache();
  QueryOptions magic = QueryOptions::Magic().WithCache();
  ASSERT_TRUE(tb_->Query("?- ancestor(a, W).", plain).ok());
  auto other_goal = tb_->Query("?- ancestor(b, W).", plain);
  ASSERT_TRUE(other_goal.ok());
  EXPECT_FALSE(other_goal->report.from_cache);
  auto other_opts = tb_->Query("?- ancestor(a, W).", magic);
  ASSERT_TRUE(other_opts.ok());
  EXPECT_FALSE(other_opts->report.from_cache);
}

TEST_F(PrecompileTest, CacheDisabledByDefault) {
  ASSERT_TRUE(tb_->Query("?- ancestor(a, W).").ok());
  ASSERT_TRUE(tb_->Query("?- ancestor(a, W).").ok());
  EXPECT_EQ(tb_->query_cache().stats().hits, 0);
  EXPECT_EQ(tb_->query_cache().size(), 0u);
}

TEST_F(PrecompileTest, AddRuleInvalidatesDependentEntries) {
  QueryOptions opts = QueryOptions::SemiNaive().WithCache();
  ASSERT_TRUE(tb_->Query("?- ancestor(a, W).", opts).ok());
  ASSERT_EQ(tb_->query_cache().size(), 1u);
  // New ancestor rule: the cached program is stale and must recompile.
  ASSERT_TRUE(tb_->Consult("ancestor(X, Y) :- step(X, Y).\n"
                           "step(a, z).\n")
                  .ok());
  EXPECT_EQ(tb_->query_cache().size(), 0u);
  EXPECT_EQ(tb_->query_cache().stats().invalidated, 1);
  auto after = tb_->Query("?- ancestor(a, W).", opts);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->report.from_cache);
  EXPECT_EQ(AnswerSet(after->result),
            (std::set<std::string>{"b|", "c|", "d|", "z|"}));
}

TEST_F(PrecompileTest, UnrelatedRuleKeepsEntry) {
  QueryOptions opts = QueryOptions::SemiNaive().WithCache();
  ASSERT_TRUE(tb_->Query("?- ancestor(a, W).", opts).ok());
  ASSERT_TRUE(tb_->AddRule("unrelated(X, Y) :- parent(X, Y).").ok());
  EXPECT_EQ(tb_->query_cache().size(), 1u);
  auto again = tb_->Query("?- ancestor(a, W).", opts);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->report.from_cache);
}

TEST_F(PrecompileTest, InvalidationOnBodyPredicateDependency) {
  // A cached program depending on `parent` must drop when a rule defining
  // `parent`-reachable predicates it uses changes. Here: add a rule whose
  // head is `parent` itself (now derived+base is illegal, so use a derived
  // wrapper instead).
  QueryOptions opts = QueryOptions::SemiNaive().WithCache();
  ASSERT_TRUE(tb_->Consult("fam(X, Y) :- parent(X, Y).\n"
                           "closure(X, Y) :- fam(X, Y).\n"
                           "closure(X, Y) :- fam(X, Z), closure(Z, Y).\n")
                  .ok());
  ASSERT_TRUE(tb_->Query("?- closure(a, W).", opts).ok());
  ASSERT_EQ(tb_->query_cache().size(), 1u);
  // fam is a body dependency of closure's program.
  ASSERT_TRUE(tb_->AddRule("fam(X, Y) :- spouse(X, Y).").ok());
  EXPECT_EQ(tb_->query_cache().size(), 0u);
}

TEST_F(PrecompileTest, ClearWorkspaceClearsCache) {
  QueryOptions opts = QueryOptions::SemiNaive().WithCache();
  ASSERT_TRUE(tb_->Query("?- ancestor(a, W).", opts).ok());
  tb_->ClearWorkspace();
  EXPECT_EQ(tb_->query_cache().size(), 0u);
}

TEST_F(PrecompileTest, FactsDoNotInvalidate) {
  QueryOptions opts = QueryOptions::SemiNaive().WithCache();
  ASSERT_TRUE(tb_->Query("?- ancestor(a, W).", opts).ok());
  ASSERT_TRUE(tb_->AddFacts("parent", {{Value("d"), Value("e")}}).ok());
  auto after = tb_->Query("?- ancestor(a, W).", opts);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->report.from_cache);
  // New facts visible despite the cached program.
  EXPECT_EQ(AnswerSet(after->result),
            (std::set<std::string>{"b|", "c|", "d|", "e|"}));
}

// ---------------------------------------------------------------------------
// Adaptive optimization decision
// ---------------------------------------------------------------------------

class AdaptiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto tb = Testbed::Create();
    ASSERT_TRUE(tb.ok());
    tb_ = std::move(*tb);
    ASSERT_TRUE(tb_->Consult(workload::AncestorRules()).ok());
    ASSERT_TRUE(
        tb_->DefineBase("parent", {DataType::kVarchar, DataType::kVarchar})
            .ok());
    auto tree = workload::MakeFullBinaryTrees(1, 9);
    ASSERT_TRUE(tb_->AddFacts("parent", tree.ToTuples()).ok());
  }

  std::unique_ptr<Testbed> tb_;
};

TEST_F(AdaptiveTest, LowSelectivityQueryGetsMagic) {
  QueryOptions opts = QueryOptions::Adaptive();
  // Deep sub-tree: a tiny fraction of the data is relevant.
  auto outcome =
      tb_->Query("?- ancestor('" + workload::TreeNodeName(0, 255) + "', W).",
                 opts);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->report.compile.magic_applied);
  EXPECT_GE(outcome->report.compile.estimated_selectivity, 0.0);
  EXPECT_LT(outcome->report.compile.estimated_selectivity, 0.1);
}

TEST_F(AdaptiveTest, HighSelectivityQuerySkipsMagic) {
  QueryOptions opts = QueryOptions::Adaptive();
  // Root query: everything is relevant.
  auto outcome = tb_->Query(
      "?- ancestor('" + workload::TreeNodeName(0, 0) + "', W).", opts);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->report.compile.magic_applied);
  EXPECT_GE(outcome->report.compile.estimated_selectivity, 0.6);
}

TEST_F(AdaptiveTest, AllFreeQuerySkipsMagic) {
  QueryOptions opts = QueryOptions::Adaptive();
  auto outcome = tb_->Query("?- ancestor(X, Y).", opts);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->report.compile.magic_applied);
  EXPECT_EQ(outcome->report.compile.estimated_selectivity, 1.0);
}

TEST_F(AdaptiveTest, AdaptiveMatchesExplicitResults) {
  QueryOptions adaptive = QueryOptions::Adaptive();
  QueryOptions magic = QueryOptions::Magic();
  std::string goal =
      "?- ancestor('" + workload::TreeNodeName(0, 31) + "', W).";
  auto a = tb_->Query(goal, adaptive);
  auto m = tb_->Query(goal, magic);
  ASSERT_TRUE(a.ok() && m.ok());
  EXPECT_EQ(AnswerSet(a->result), AnswerSet(m->result));
}

TEST_F(AdaptiveTest, EstimatorCountsTowardOptimizationTime) {
  QueryOptions opts = QueryOptions::Adaptive();
  auto outcome = tb_->Query(
      "?- ancestor('" + workload::TreeNodeName(0, 127) + "', W).", opts);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->report.compile.t_opt_us, 0);
}

}  // namespace
}  // namespace dkb::testbed
