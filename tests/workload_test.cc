#include <gtest/gtest.h>

#include <map>
#include <set>

#include "km/eval_graph.h"
#include "km/pcg.h"
#include "workload/data_gen.h"
#include "workload/rule_gen.h"

namespace dkb::workload {
namespace {

TEST(DataGenTest, ListsSizing) {
  EdgeSet lists = MakeLists(3, 10);
  EXPECT_EQ(lists.num_tuples(), 3u * 9u);  // n * (l - 1)
  EXPECT_EQ(lists.roots.size(), 3u);
  EXPECT_EQ(lists.num_nodes, 30);
}

TEST(DataGenTest, ListsAreChains) {
  EdgeSet lists = MakeLists(1, 5);
  std::map<std::string, int> out_degree;
  std::map<std::string, int> in_degree;
  for (const auto& [a, b] : lists.edges) {
    ++out_degree[a];
    ++in_degree[b];
  }
  for (const auto& [node, d] : out_degree) EXPECT_EQ(d, 1) << node;
  for (const auto& [node, d] : in_degree) EXPECT_EQ(d, 1) << node;
  EXPECT_EQ(in_degree.count(lists.roots[0]), 0u);
}

TEST(DataGenTest, FullBinaryTreeSizing) {
  // Paper: n trees of depth d have n * (2^d - 2) tuples.
  for (int d : {2, 3, 6}) {
    EdgeSet trees = MakeFullBinaryTrees(2, d);
    EXPECT_EQ(trees.num_tuples(),
              static_cast<size_t>(2 * ((1 << d) - 2)))
        << "depth " << d;
    EXPECT_EQ(trees.num_nodes, 2 * ((1 << d) - 1));
  }
}

TEST(DataGenTest, TreeInternalNodesHaveTwoChildren) {
  EdgeSet tree = MakeFullBinaryTrees(1, 4);
  std::map<std::string, int> out_degree;
  for (const auto& [a, b] : tree.edges) {
    (void)b;
    ++out_degree[a];
  }
  for (const auto& [node, d] : out_degree) EXPECT_EQ(d, 2) << node;
  // 7 internal nodes in a depth-4 tree (15 nodes).
  EXPECT_EQ(out_degree.size(), 7u);
}

TEST(DataGenTest, SubtreeSize) {
  EXPECT_EQ(SubtreeSize(8, 0), 255);
  EXPECT_EQ(SubtreeSize(8, 1), 127);
  EXPECT_EQ(SubtreeSize(8, 7), 1);
  EXPECT_EQ(SubtreeSize(8, 8), 0);
}

TEST(DataGenTest, DagProperties) {
  EdgeSet dag = MakeDag(6, 5, 2, 99);
  EXPECT_EQ(dag.num_nodes, 30);
  EXPECT_EQ(dag.num_tuples(), 5u * 5u * 2u);  // (levels-1) * width * fan_in
  EXPECT_EQ(dag.roots.size(), 5u);
  // Acyclic by construction: every edge goes level i -> i+1.
  for (const auto& [a, b] : dag.edges) {
    int la = std::stoi(a.substr(1, a.find('_') - 1));
    int lb = std::stoi(b.substr(1, b.find('_') - 1));
    EXPECT_EQ(lb, la + 1);
  }
}

TEST(DataGenTest, DagDeterministicBySeed) {
  EdgeSet a = MakeDag(4, 3, 2, 7);
  EdgeSet b = MakeDag(4, 3, 2, 7);
  EdgeSet c = MakeDag(4, 3, 2, 8);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_NE(a.edges, c.edges);
}

TEST(DataGenTest, CyclicGraphAddsBackEdges) {
  EdgeSet dag = MakeDag(6, 4, 2, 11);
  EdgeSet cyc = MakeCyclicGraph(6, 4, 2, 3, 2, 11);
  EXPECT_EQ(cyc.num_tuples(), dag.num_tuples() + 3);
  // Back edges go to strictly earlier levels.
  for (size_t i = dag.num_tuples(); i < cyc.num_tuples(); ++i) {
    const auto& [a, b] = cyc.edges[i];
    int la = std::stoi(a.substr(1, a.find('_') - 1));
    int lb = std::stoi(b.substr(1, b.find('_') - 1));
    EXPECT_LT(lb, la);
  }
}

TEST(DataGenTest, ToTuples) {
  EdgeSet lists = MakeLists(1, 3);
  auto tuples = lists.ToTuples();
  ASSERT_EQ(tuples.size(), 2u);
  EXPECT_EQ(tuples[0][0], Value("l0_0"));
  EXPECT_EQ(tuples[0][1], Value("l0_1"));
}

TEST(RuleGenTest, ExactCounts) {
  GeneratedRuleBase rb = MakeRuleBase(50, 7);
  EXPECT_EQ(rb.rules.size(), 50u);
  EXPECT_EQ(rb.relevant.size(), 7u);
  EXPECT_EQ(rb.query_pred, "q_p0");
  EXPECT_EQ(rb.relevant_derived_preds, 7);  // chain, 1 rule per pred
}

TEST(RuleGenTest, RulesPerPredControlsPredCount) {
  GeneratedRuleBase rb = MakeRuleBase(40, 12, /*rules_per_pred=*/3);
  EXPECT_EQ(rb.relevant.size(), 12u);
  EXPECT_EQ(rb.relevant_derived_preds, 4);  // ceil(12/3)
}

TEST(RuleGenTest, RelevantSetMatchesReachability) {
  GeneratedRuleBase rb = MakeRuleBase(60, 9);
  km::Pcg pcg;
  for (const auto& rule : rb.rules) pcg.AddRule(rule);
  auto reach = pcg.Reachable(rb.query_pred);
  reach.insert(rb.query_pred);
  size_t relevant = 0;
  for (const auto& rule : rb.rules) {
    if (reach.count(rule.head.predicate) > 0) ++relevant;
  }
  EXPECT_EQ(relevant, 9u);
}

TEST(RuleGenTest, EveryDerivedPredicateHasRules) {
  GeneratedRuleBase rb = MakeRuleBase(30, 5, 2);
  std::set<std::string> derived;
  for (const auto& rule : rb.rules) derived.insert(rule.head.predicate);
  auto order = km::BuildEvaluationOrder(rb.rules, derived);
  ASSERT_TRUE(order.ok()) << order.status().ToString();
  // Rule bases are non-recursive: all nodes are plain predicates.
  for (const auto& node : order->nodes) {
    EXPECT_EQ(node.kind, km::EvalNode::Kind::kPredicate);
  }
}

TEST(RuleGenTest, RelevantClampedToTotal) {
  GeneratedRuleBase rb = MakeRuleBase(5, 10);
  EXPECT_EQ(rb.rules.size(), 5u);
  EXPECT_EQ(rb.relevant.size(), 5u);
}

}  // namespace
}  // namespace dkb::workload
