// Epoch-based MVCC: sessions pin a commit epoch instead of cloning the
// database, writers advance it, and a background vacuum thread reclaims row
// versions no pinned session can still see. The concurrency tests here are
// the TSan surface for lock-free session reads racing testbed writes.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "testbed/session.h"
#include "testbed/testbed.h"
#include "workload/data_gen.h"
#include "workload/queries.h"

namespace dkb::testbed {
namespace {

constexpr int kVacuumMs = 5;

/// Polls `cond` for up to `limit_ms`; returns whether it became true.
bool WaitFor(const std::function<bool()>& cond, int limit_ms = 10000) {
  for (int waited = 0; waited < limit_ms; waited += kVacuumMs) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(kVacuumMs));
  }
  return cond();
}

std::unique_ptr<Testbed> MakeTestbed() {
  auto tb =
      Testbed::Create(TestbedOptions{}.WithVacuumInterval(kVacuumMs));
  EXPECT_TRUE(tb.ok()) << tb.status().ToString();
  Status s = (*tb)->Consult(workload::AncestorRules());
  EXPECT_TRUE(s.ok()) << s.ToString();
  s = (*tb)->DefineBase("parent", {DataType::kVarchar, DataType::kVarchar});
  EXPECT_TRUE(s.ok()) << s.ToString();
  std::vector<Tuple> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back({Value("p" + std::to_string(i)),
                    Value("c" + std::to_string(i))});
  }
  s = (*tb)->AddFacts("parent", rows);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return std::move(*tb);
}

TEST(MvccTest, EveryCommittedWriteAdvancesTheEpoch) {
  auto tb = MakeTestbed();
  uint64_t e0 = tb->epoch();
  ASSERT_TRUE(tb->AddFacts("parent", {{Value("x"), Value("y")}}).ok());
  uint64_t e1 = tb->epoch();
  EXPECT_GT(e1, e0);
  ASSERT_TRUE(tb->AddRule("foo(X) :- parent(X, Y).").ok());
  EXPECT_GT(tb->epoch(), e1);
  // Mutating SQL commits an epoch too (sessions must observe raw DML).
  uint64_t e2 = tb->epoch();
  ASSERT_TRUE(tb->ExecuteSql("DELETE FROM edb_parent WHERE c0 = 'x'").ok());
  EXPECT_GT(tb->epoch(), e2);
  // Read-only SQL does not.
  uint64_t e3 = tb->epoch();
  ASSERT_TRUE(tb->ExecuteSql("SELECT COUNT(*) FROM edb_parent").ok());
  EXPECT_EQ(tb->epoch(), e3);
}

TEST(MvccTest, VacuumReclaimsDeletedVersionsOnlyAfterPinsRelease) {
  auto tb = MakeTestbed();

  // Pin the pre-delete epoch with a session that has run a query.
  auto session = tb->OpenSession();
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto pinq = (*session)->Query("ancestor(p3, W)");
  ASSERT_TRUE(pinq.ok()) << pinq.status().ToString();
  EXPECT_EQ(pinq->result.rows.size(), 1u);

  // Kill all 100 fact rows. Their versions now end at the new epoch — above
  // the session's pin, so the vacuum floor protects them.
  auto del = tb->ExecuteSql("DELETE FROM edb_parent");
  ASSERT_TRUE(del.ok()) << del.status().ToString();

  std::this_thread::sleep_for(std::chrono::milliseconds(kVacuumMs * 20));
  int64_t while_pinned = tb->vacuumed_rows();

  // Release the pin; the reclaimer must now pick up (at least) the 100 dead
  // fact versions.
  session->reset();
  EXPECT_TRUE(WaitFor([&] {
    return tb->vacuumed_rows() >= while_pinned + 100;
  })) << "vacuumed " << tb->vacuumed_rows() << " rows, expected >= "
      << while_pinned + 100;

  // And the live answer is unaffected.
  auto q = tb->Query("ancestor(p3, W)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->result.rows.size(), 0u);
}

TEST(MvccTest, StaleSessionPinParksTheVacuumFloor) {
  auto tb = MakeTestbed();
  // OpenSession pins the current epoch immediately; as long as the session
  // does not run another query, that stale pin is the vacuum floor.
  auto session = tb->OpenSession();
  ASSERT_TRUE(session.ok());
  uint64_t pinned = (*session)->epoch();
  ASSERT_GT(pinned, 0u);

  // The deleted versions end above the stale pin, so nothing is reclaimable.
  ASSERT_TRUE(tb->ExecuteSql("DELETE FROM edb_parent").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(kVacuumMs * 20));
  EXPECT_EQ(tb->vacuumed_rows(), 0);

  // The next query on the same session re-pins to the current epoch; the
  // dead versions fall below the floor and become reclaimable even while
  // the session stays open.
  ASSERT_TRUE((*session)->Query("ancestor(p3, W)").ok());
  EXPECT_GT((*session)->epoch(), pinned);
  EXPECT_TRUE(WaitFor([&] { return tb->vacuumed_rows() >= 100; }))
      << "vacuumed " << tb->vacuumed_rows();
}

TEST(MvccTest, SessionOpenCostIsIndependentOfDataSize) {
  // O(metadata) session open: opening against a 100x larger database must
  // not be ~100x slower. Generous 10x bound keeps this robust on loaded CI
  // machines while still catching a return to O(database) cloning.
  auto small = Testbed::Create();
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE((*small)->Consult(workload::AncestorRules()).ok());
  ASSERT_TRUE((*small)
                  ->DefineBase("parent",
                               {DataType::kVarchar, DataType::kVarchar})
                  .ok());
  workload::EdgeSet tiny = workload::MakeLists(2, 10);
  ASSERT_TRUE((*small)->AddFacts("parent", tiny.ToTuples()).ok());

  auto big = Testbed::Create();
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE((*big)->Consult(workload::AncestorRules()).ok());
  ASSERT_TRUE(
      (*big)
          ->DefineBase("parent", {DataType::kVarchar, DataType::kVarchar})
          .ok());
  workload::EdgeSet huge = workload::MakeLists(200, 10);
  ASSERT_TRUE((*big)->AddFacts("parent", huge.ToTuples()).ok());

  auto time_opens = [](Testbed* tb) {
    // Warm up allocator/caches, then time a batch of session opens. Only
    // the open itself is timed: the pin is O(metadata), while any query the
    // session runs afterwards is naturally O(its own working set).
    for (int i = 0; i < 3; ++i) {
      auto s = tb->OpenSession();
      EXPECT_TRUE(s.ok());
    }
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 10; ++i) {
      auto s = tb->OpenSession();
      EXPECT_TRUE(s.ok());
      EXPECT_GT((*s)->epoch(), 0u);
    }
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  int64_t small_us = time_opens(small->get());
  int64_t big_us = time_opens(big->get());
  EXPECT_LT(big_us, small_us * 10 + 200000)
      << "open-only: small=" << small_us << "us big=" << big_us << "us";
}

TEST(MvccTest, ConcurrentSessionsWritersAndVacuum) {
  auto tb = MakeTestbed();
  constexpr int kReaders = 3;
  constexpr int kReps = 12;
  std::vector<std::unique_ptr<Session>> sessions;
  for (int t = 0; t < kReaders; ++t) {
    auto s = tb->OpenSession();
    ASSERT_TRUE(s.ok());
    sessions.push_back(std::move(*s));
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kReps; ++i) {
        // ancestor(p3, W) answers {c3} while the fact lives and {} after
        // the writer deletes it — never anything else, never an error.
        auto r = sessions[t]->Query("ancestor(p3, W)");
        if (!r.ok() || r->result.rows.size() > 1) failures.fetch_add(1);
      }
    });
  }
  std::thread writer([&]() {
    for (int i = 0; i < 6; ++i) {
      Status s = tb->AddFacts(
          "parent", {{Value("w" + std::to_string(i)), Value("wc")}});
      if (!s.ok()) failures.fetch_add(1);
      auto del = tb->ExecuteSql("DELETE FROM edb_parent WHERE c0 = 'w" +
                                std::to_string(i) + "'");
      if (!del.ok()) failures.fetch_add(1);
    }
  });
  for (auto& th : threads) th.join();
  writer.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace dkb::testbed
