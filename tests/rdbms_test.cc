#include <gtest/gtest.h>

#include <algorithm>

#include "rdbms/database.h"

namespace dkb {
namespace {

class RdbmsTest : public ::testing::Test {
 protected:
  void Exec(const std::string& sql) {
    auto r = db_.Execute(sql);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  QueryResult Query(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(*r) : QueryResult{};
  }

  void LoadParentChain(int n) {
    Exec("CREATE TABLE parent (par VARCHAR, child VARCHAR)");
    std::string values;
    for (int i = 0; i < n; ++i) {
      if (i) values += ", ";
      values += "('n" + std::to_string(i) + "', 'n" + std::to_string(i + 1) +
                "')";
    }
    Exec("INSERT INTO parent VALUES " + values);
  }

  Database db_;
};

TEST_F(RdbmsTest, CreateInsertSelect) {
  Exec("CREATE TABLE t (x INT, name VARCHAR)");
  Exec("INSERT INTO t VALUES (1, 'one'), (2, 'two')");
  QueryResult r = Query("SELECT * FROM t ORDER BY x");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1], Value("one"));
  EXPECT_EQ(r.schema.column(0).name, "x");
}

TEST_F(RdbmsTest, CreateTableTwiceFails) {
  Exec("CREATE TABLE t (x INT)");
  EXPECT_FALSE(db_.Execute("CREATE TABLE t (x INT)").ok());
  Exec("CREATE TABLE IF NOT EXISTS t (x INT)");  // idempotent form ok
}

TEST_F(RdbmsTest, DropTable) {
  Exec("CREATE TABLE t (x INT)");
  Exec("DROP TABLE t");
  EXPECT_FALSE(db_.Execute("SELECT * FROM t").ok());
  Exec("DROP TABLE IF EXISTS t");  // no error
  EXPECT_FALSE(db_.Execute("DROP TABLE t").ok());
}

TEST_F(RdbmsTest, InsertTypeMismatchFails) {
  Exec("CREATE TABLE t (x INT)");
  EXPECT_FALSE(db_.Execute("INSERT INTO t VALUES ('str')").ok());
}

TEST_F(RdbmsTest, ProjectionAliasesAndLiterals) {
  Exec("CREATE TABLE t (x INT, y VARCHAR)");
  Exec("INSERT INTO t VALUES (1, 'a')");
  QueryResult r = Query("SELECT y AS label, x, 99 AS k FROM t");
  ASSERT_EQ(r.schema.num_columns(), 3u);
  EXPECT_EQ(r.schema.column(0).name, "label");
  EXPECT_EQ(r.schema.column(2).name, "k");
  EXPECT_EQ(r.rows[0][2], Value(static_cast<int64_t>(99)));
}

TEST_F(RdbmsTest, WhereComparisons) {
  Exec("CREATE TABLE t (x INT)");
  Exec("INSERT INTO t VALUES (1), (2), (3), (4), (5)");
  EXPECT_EQ(Query("SELECT * FROM t WHERE x < 3").rows.size(), 2u);
  EXPECT_EQ(Query("SELECT * FROM t WHERE x <= 3").rows.size(), 3u);
  EXPECT_EQ(Query("SELECT * FROM t WHERE x > 3").rows.size(), 2u);
  EXPECT_EQ(Query("SELECT * FROM t WHERE x >= 3").rows.size(), 3u);
  EXPECT_EQ(Query("SELECT * FROM t WHERE x <> 3").rows.size(), 4u);
  EXPECT_EQ(Query("SELECT * FROM t WHERE x = 3").rows.size(), 1u);
  EXPECT_EQ(Query("SELECT * FROM t WHERE NOT x = 3").rows.size(), 4u);
  EXPECT_EQ(Query("SELECT * FROM t WHERE x = 1 OR x = 5").rows.size(), 2u);
  EXPECT_EQ(Query("SELECT * FROM t WHERE x IN (2, 4, 9)").rows.size(), 2u);
}

TEST_F(RdbmsTest, NullComparisonsAreFalse) {
  Exec("CREATE TABLE t (x INT)");
  Exec("INSERT INTO t VALUES (1), (NULL)");
  EXPECT_EQ(Query("SELECT * FROM t WHERE x = 1").rows.size(), 1u);
  EXPECT_EQ(Query("SELECT * FROM t WHERE x <> 1").rows.size(), 0u);
}

TEST_F(RdbmsTest, TwoWayJoin) {
  Exec("CREATE TABLE parent (par VARCHAR, child VARCHAR)");
  Exec("INSERT INTO parent VALUES ('a','b'), ('b','c'), ('b','d')");
  QueryResult r = Query(
      "SELECT p1.par, p2.child FROM parent p1, parent p2 "
      "WHERE p1.child = p2.par ORDER BY 1, 2");
  ASSERT_EQ(r.rows.size(), 2u);  // a->b->c, a->b->d
  EXPECT_EQ(r.rows[0][0], Value("a"));
  EXPECT_EQ(r.rows[0][1], Value("c"));
  EXPECT_EQ(r.rows[1][1], Value("d"));
}

TEST_F(RdbmsTest, ThreeWayJoin) {
  LoadParentChain(10);
  QueryResult r = Query(
      "SELECT a.par, c.child FROM parent a, parent b, parent c "
      "WHERE a.child = b.par AND b.child = c.par");
  EXPECT_EQ(r.rows.size(), 8u);  // great-grandparent pairs in a chain of 10
}

TEST_F(RdbmsTest, CrossJoinWithoutPredicate) {
  Exec("CREATE TABLE a (x INT)");
  Exec("CREATE TABLE b (y INT)");
  Exec("INSERT INTO a VALUES (1), (2)");
  Exec("INSERT INTO b VALUES (10), (20), (30)");
  EXPECT_EQ(Query("SELECT * FROM a, b").rows.size(), 6u);
}

TEST_F(RdbmsTest, JoinUsesIndexWhenAvailable) {
  LoadParentChain(100);
  Exec("CREATE INDEX par_ix ON parent (par)");
  db_.stats().Reset();
  Query(
      "SELECT p1.par, p2.child FROM parent p1, parent p2 "
      "WHERE p1.child = p2.par");
  // Index nested-loop join: one probe per outer row, no full rescan.
  EXPECT_EQ(db_.stats().index_probes, 100);
  EXPECT_EQ(db_.stats().rows_scanned, 100);  // outer side only
}

TEST_F(RdbmsTest, IndexScanForLiteralEquality) {
  LoadParentChain(50);
  Exec("CREATE INDEX par_ix ON parent (par)");
  db_.stats().Reset();
  QueryResult r = Query("SELECT * FROM parent WHERE par = 'n7'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(db_.stats().rows_scanned, 0);
  EXPECT_EQ(db_.stats().index_probes, 1);
}

TEST_F(RdbmsTest, IndexScanForInList) {
  LoadParentChain(50);
  Exec("CREATE INDEX par_ix ON parent (par)");
  db_.stats().Reset();
  QueryResult r =
      Query("SELECT * FROM parent WHERE par IN ('n1', 'n2', 'n3')");
  EXPECT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(db_.stats().rows_scanned, 0);
  EXPECT_EQ(db_.stats().index_probes, 3);
}

TEST_F(RdbmsTest, OrConditionAcrossJoin) {
  // Shape of the paper's relevant-rule extraction query:
  //   WHERE join-pred AND (x = 'p' OR y = 'q').
  Exec("CREATE TABLE r (h VARCHAR, body VARCHAR)");
  Exec("CREATE TABLE reach (f VARCHAR, t VARCHAR)");
  Exec("INSERT INTO r VALUES ('p','x'), ('q','y'), ('z','w')");
  Exec("INSERT INTO reach VALUES ('p','p'), ('p','z'), ('q','q')");
  QueryResult res = Query(
      "SELECT DISTINCT r.h FROM reach, r WHERE reach.t = r.h "
      "AND (reach.f = 'p' OR reach.f = 'q') ORDER BY 1");
  ASSERT_EQ(res.rows.size(), 3u);
  EXPECT_EQ(res.rows[0][0], Value("p"));
  EXPECT_EQ(res.rows[1][0], Value("q"));
  EXPECT_EQ(res.rows[2][0], Value("z"));
}

TEST_F(RdbmsTest, Distinct) {
  Exec("CREATE TABLE t (x INT)");
  Exec("INSERT INTO t VALUES (1), (1), (2), (2), (2)");
  EXPECT_EQ(Query("SELECT DISTINCT x FROM t").rows.size(), 2u);
}

TEST_F(RdbmsTest, CountStar) {
  Exec("CREATE TABLE t (x INT)");
  Exec("INSERT INTO t VALUES (1), (2), (3)");
  QueryResult r = Query("SELECT COUNT(*) FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value(static_cast<int64_t>(3)));
  EXPECT_EQ(r.schema.column(0).name, "count");
  auto n = db_.QueryCount("SELECT COUNT(*) FROM t WHERE x > 1");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2);
}

TEST_F(RdbmsTest, SetOperations) {
  Exec("CREATE TABLE a (x INT)");
  Exec("CREATE TABLE b (x INT)");
  Exec("INSERT INTO a VALUES (1), (2), (3), (3)");
  Exec("INSERT INTO b VALUES (2), (4)");
  EXPECT_EQ(Query("SELECT x FROM a UNION SELECT x FROM b").rows.size(), 4u);
  EXPECT_EQ(Query("SELECT x FROM a UNION ALL SELECT x FROM b").rows.size(),
            6u);
  QueryResult diff =
      Query("SELECT x FROM a EXCEPT SELECT x FROM b ORDER BY x");
  ASSERT_EQ(diff.rows.size(), 2u);  // {1, 3} with set semantics
  EXPECT_EQ(diff.rows[0][0], Value(static_cast<int64_t>(1)));
  EXPECT_EQ(diff.rows[1][0], Value(static_cast<int64_t>(3)));
  EXPECT_EQ(
      Query("SELECT x FROM a INTERSECT SELECT x FROM b").rows.size(), 1u);
}

TEST_F(RdbmsTest, SetOpArityMismatchFails) {
  Exec("CREATE TABLE a (x INT, y INT)");
  Exec("CREATE TABLE b (x INT)");
  EXPECT_FALSE(db_.Execute("SELECT * FROM a UNION SELECT * FROM b").ok());
}

TEST_F(RdbmsTest, InsertSelectMaterializesFirst) {
  Exec("CREATE TABLE t (x INT)");
  Exec("INSERT INTO t VALUES (1), (2)");
  // Self-referencing insert must not loop forever.
  Exec("INSERT INTO t SELECT x FROM t");
  EXPECT_EQ(Query("SELECT * FROM t").rows.size(), 4u);
}

TEST_F(RdbmsTest, InsertSelectArityMismatchFails) {
  Exec("CREATE TABLE t (x INT, y INT)");
  Exec("CREATE TABLE u (x INT)");
  Exec("INSERT INTO u VALUES (1)");
  EXPECT_FALSE(db_.Execute("INSERT INTO t SELECT x FROM u").ok());
}

TEST_F(RdbmsTest, DeleteWithAndWithoutWhere) {
  Exec("CREATE TABLE t (x INT)");
  Exec("INSERT INTO t VALUES (1), (2), (3)");
  auto r = db_.Execute("DELETE FROM t WHERE x >= 2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows_affected, 2);
  EXPECT_EQ(Query("SELECT * FROM t").rows.size(), 1u);
  r = db_.Execute("DELETE FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows_affected, 1);
  EXPECT_EQ(Query("SELECT * FROM t").rows.size(), 0u);
}

TEST_F(RdbmsTest, OrderByDescendingAndOrdinal) {
  Exec("CREATE TABLE t (x INT, y VARCHAR)");
  Exec("INSERT INTO t VALUES (1,'b'), (2,'a'), (3,'c')");
  QueryResult r = Query("SELECT x, y FROM t ORDER BY y DESC");
  EXPECT_EQ(r.rows[0][1], Value("c"));
  QueryResult r2 = Query("SELECT x, y FROM t ORDER BY 2");
  EXPECT_EQ(r2.rows[0][1], Value("a"));
}

TEST_F(RdbmsTest, Limit) {
  Exec("CREATE TABLE t (x INT)");
  Exec("INSERT INTO t VALUES (5), (1), (4), (2), (3)");
  QueryResult r = Query("SELECT x FROM t ORDER BY x LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[1][0], Value(static_cast<int64_t>(2)));
}

TEST_F(RdbmsTest, AmbiguousColumnFails) {
  Exec("CREATE TABLE a (x INT)");
  Exec("CREATE TABLE b (x INT)");
  EXPECT_FALSE(db_.Execute("SELECT x FROM a, b").ok());
}

TEST_F(RdbmsTest, UnknownColumnAndTableFail) {
  Exec("CREATE TABLE a (x INT)");
  EXPECT_FALSE(db_.Execute("SELECT bogus FROM a").ok());
  EXPECT_FALSE(db_.Execute("SELECT * FROM missing").ok());
  EXPECT_FALSE(db_.Execute("SELECT b.x FROM a").ok());
}

TEST_F(RdbmsTest, DuplicateAliasFails) {
  Exec("CREATE TABLE a (x INT)");
  EXPECT_FALSE(db_.Execute("SELECT * FROM a t, a t").ok());
}

TEST_F(RdbmsTest, ExecuteAllScript) {
  ASSERT_TRUE(db_.ExecuteAll("CREATE TABLE t (x INT);"
                             "INSERT INTO t VALUES (1);"
                             "INSERT INTO t VALUES (2);")
                  .ok());
  EXPECT_EQ(Query("SELECT * FROM t").rows.size(), 2u);
}

TEST_F(RdbmsTest, QueryScalarAndRows) {
  Exec("CREATE TABLE t (x INT)");
  Exec("INSERT INTO t VALUES (7)");
  auto v = db_.QueryScalar("SELECT x FROM t");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_int(), 7);
  auto rows = db_.QueryRows("SELECT x FROM t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
  EXPECT_FALSE(db_.QueryScalar("SELECT x FROM t WHERE x = 0").ok());
}

TEST_F(RdbmsTest, TempTableLifecycle) {
  Exec("CREATE TABLE #delta (x INT)");
  Exec("INSERT INTO #delta VALUES (1)");
  EXPECT_EQ(Query("SELECT * FROM #delta").rows.size(), 1u);
  Exec("DROP TABLE #delta");
  EXPECT_FALSE(db_.Execute("SELECT * FROM #delta").ok());
}

TEST_F(RdbmsTest, StatementCacheReusesParsedText) {
  Exec("CREATE TABLE t (x INT)");
  Exec("INSERT INTO t VALUES (1)");
  db_.stats().Reset();
  Query("SELECT * FROM t");
  Query("SELECT * FROM t");
  Query("SELECT * FROM t");
  EXPECT_EQ(db_.stats().statement_cache_hits, 2);
  // A cached statement still sees fresh data.
  Exec("INSERT INTO t VALUES (2)");
  EXPECT_EQ(Query("SELECT * FROM t").rows.size(), 2u);
  // And survives DDL churn (binding is per-execution): recreate the table
  // with a different schema and the cached text re-binds cleanly.
  Exec("DROP TABLE t");
  Exec("CREATE TABLE t (x INT, y INT)");
  Exec("INSERT INTO t VALUES (7, 8)");
  QueryResult r = Query("SELECT * FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.schema.num_columns(), 2u);
}

TEST_F(RdbmsTest, StatementCacheCanBeDisabled) {
  db_.set_statement_cache_enabled(false);
  Exec("CREATE TABLE t (x INT)");
  db_.stats().Reset();
  Query("SELECT * FROM t");
  Query("SELECT * FROM t");
  EXPECT_EQ(db_.stats().statement_cache_hits, 0);
}

TEST_F(RdbmsTest, ResultToStringRendersTable) {
  Exec("CREATE TABLE t (x INT, y VARCHAR)");
  Exec("INSERT INTO t VALUES (1, 'abc')");
  std::string s = Query("SELECT * FROM t").ToString();
  EXPECT_NE(s.find("x"), std::string::npos);
  EXPECT_NE(s.find("abc"), std::string::npos);
  EXPECT_NE(s.find("(1 rows)"), std::string::npos);
}

TEST_F(RdbmsTest, ExplainShowsAccessPaths) {
  LoadParentChain(20);
  Exec("CREATE INDEX par_ix ON parent (par)");
  QueryResult indexed = Query("EXPLAIN SELECT * FROM parent WHERE par = 'n3'");
  std::string plan;
  for (const Tuple& row : indexed.rows) plan += row[0].as_string() + "\n";
  EXPECT_NE(plan.find("IndexScan(parent.par_ix)"), std::string::npos) << plan;

  QueryResult join = Query(
      "EXPLAIN SELECT p1.par FROM parent p1, parent p2 "
      "WHERE p1.child = p2.par");
  plan.clear();
  for (const Tuple& row : join.rows) plan += row[0].as_string() + "\n";
  EXPECT_NE(plan.find("IndexNLJoin"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Project"), std::string::npos) << plan;
}

TEST_F(RdbmsTest, ExplainHashJoinWithoutIndex) {
  LoadParentChain(20);
  QueryResult join = Query(
      "EXPLAIN SELECT p1.par FROM parent p1, parent p2 "
      "WHERE p1.child = p2.par");
  std::string plan;
  for (const Tuple& row : join.rows) plan += row[0].as_string() + "\n";
  EXPECT_NE(plan.find("HashJoin"), std::string::npos) << plan;
}

TEST_F(RdbmsTest, RangeScanUsesOrderedIndex) {
  Exec("CREATE TABLE t (x INT, y VARCHAR)");
  std::string values;
  for (int i = 0; i < 100; ++i) {
    if (i) values += ", ";
    values += "(" + std::to_string(i) + ", 'v')";
  }
  Exec("INSERT INTO t VALUES " + values);
  Exec("CREATE ORDERED INDEX x_ix ON t (x)");

  db_.stats().Reset();
  QueryResult r = Query("SELECT * FROM t WHERE x < 10");
  EXPECT_EQ(r.rows.size(), 10u);
  EXPECT_EQ(db_.stats().rows_scanned, 0);  // no sequential scan
  // Inclusive range fetch: rows 0..10 fetched, row 10 filtered.
  EXPECT_EQ(db_.stats().index_rows, 11);

  db_.stats().Reset();
  EXPECT_EQ(Query("SELECT * FROM t WHERE x >= 95").rows.size(), 5u);
  EXPECT_EQ(db_.stats().rows_scanned, 0);

  // Both bounds: the equality-free conjunct pair uses one bound, filters
  // the other.
  EXPECT_EQ(Query("SELECT * FROM t WHERE x > 10 AND x <= 15").rows.size(),
            5u);
  // Literal-on-the-left form is normalized.
  EXPECT_EQ(Query("SELECT * FROM t WHERE 90 <= x").rows.size(), 10u);

  QueryResult plan = Query("EXPLAIN SELECT * FROM t WHERE x < 10");
  std::string text;
  for (const Tuple& row : plan.rows) text += row[0].as_string();
  EXPECT_NE(text.find("IndexRangeScan(t.x_ix)"), std::string::npos) << text;
}

TEST_F(RdbmsTest, RangeScanNotUsedOnHashIndex) {
  Exec("CREATE TABLE t (x INT)");
  Exec("INSERT INTO t VALUES (1), (2), (3)");
  Exec("CREATE INDEX x_ix ON t (x)");  // hash index
  QueryResult plan = Query("EXPLAIN SELECT * FROM t WHERE x < 2");
  std::string text;
  for (const Tuple& row : plan.rows) text += row[0].as_string();
  EXPECT_NE(text.find("SeqScan"), std::string::npos) << text;
  EXPECT_EQ(Query("SELECT * FROM t WHERE x < 2").rows.size(), 1u);
}

TEST_F(RdbmsTest, RangeScanOnStrings) {
  Exec("CREATE TABLE t (name VARCHAR)");
  Exec("INSERT INTO t VALUES ('apple'), ('banana'), ('cherry'), ('fig')");
  Exec("CREATE ORDERED INDEX n_ix ON t (name)");
  db_.stats().Reset();
  QueryResult r = Query("SELECT * FROM t WHERE name < 'cherry' ORDER BY 1");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0], Value("apple"));
  EXPECT_EQ(db_.stats().rows_scanned, 0);
}

TEST_F(RdbmsTest, ExplainDoesNotExecute) {
  Exec("CREATE TABLE t (x INT)");
  Exec("INSERT INTO t VALUES (1)");
  db_.stats().Reset();
  Query("EXPLAIN SELECT * FROM t");
  EXPECT_EQ(db_.stats().rows_scanned, 0);
}

// Semi-naive building block: (SELECT ... join) EXCEPT (SELECT * FROM acc).
TEST_F(RdbmsTest, DifferentialQueryShape) {
  Exec("CREATE TABLE parent (par VARCHAR, child VARCHAR)");
  Exec("INSERT INTO parent VALUES ('a','b'), ('b','c')");
  Exec("CREATE TABLE anc (src VARCHAR, dst VARCHAR)");
  Exec("INSERT INTO anc VALUES ('a','b'), ('b','c')");
  Exec("CREATE TABLE #delta (src VARCHAR, dst VARCHAR)");
  Exec("INSERT INTO #delta VALUES ('a','b'), ('b','c')");
  QueryResult r = Query(
      "(SELECT d.src, p.child FROM #delta d, parent p WHERE d.dst = p.par) "
      "EXCEPT (SELECT * FROM anc)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value("a"));
  EXPECT_EQ(r.rows[0][1], Value("c"));
}

}  // namespace
}  // namespace dkb
