#include "storage/wal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace dkb {
namespace {

struct Rec {
  uint64_t lsn;
  WalRecordKind kind;
  std::string payload;
};

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::vector<Rec> ReplayAll(const std::string& path, uint64_t after_lsn = 0) {
  std::vector<Rec> out;
  Status s = Wal::Replay(
      path, after_lsn,
      [&](uint64_t lsn, WalRecordKind kind, std::string_view payload) {
        out.push_back({lsn, kind, std::string(payload)});
        return Status::OK();
      });
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

int64_t FileSize(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in ? static_cast<int64_t>(in.tellg()) : -1;
}

TEST(WalTest, AppendReplayRoundTrip) {
  std::string path = TempPath("wal_roundtrip.wal");
  auto wal = Wal::Open(path, Wal::Options{});
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();

  auto l1 = (*wal)->Append(WalRecordKind::kConsult, "p(a).");
  auto l2 = (*wal)->Append(WalRecordKind::kAddRule, "q(X) :- p(X).");
  auto l3 = (*wal)->Append(WalRecordKind::kUpdateStored, "");
  ASSERT_TRUE(l1.ok() && l2.ok() && l3.ok());
  EXPECT_LT(*l1, *l2);
  EXPECT_LT(*l2, *l3);
  ASSERT_TRUE((*wal)->WaitDurable(*l3).ok());
  EXPECT_EQ((*wal)->appends(), 3);
  wal->reset();  // close before replaying

  std::vector<Rec> recs = ReplayAll(path);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].lsn, *l1);
  EXPECT_EQ(recs[0].kind, WalRecordKind::kConsult);
  EXPECT_EQ(recs[0].payload, "p(a).");
  EXPECT_EQ(recs[1].kind, WalRecordKind::kAddRule);
  EXPECT_EQ(recs[1].payload, "q(X) :- p(X).");
  EXPECT_EQ(recs[2].kind, WalRecordKind::kUpdateStored);
  EXPECT_TRUE(recs[2].payload.empty());
}

TEST(WalTest, ReplaySkipsThroughAfterLsn) {
  std::string path = TempPath("wal_afterlsn.wal");
  auto wal = Wal::Open(path, Wal::Options{});
  ASSERT_TRUE(wal.ok());
  uint64_t cut = 0;
  for (int i = 0; i < 5; ++i) {
    auto lsn = (*wal)->Append(WalRecordKind::kSql,
                              "insert " + std::to_string(i));
    ASSERT_TRUE(lsn.ok());
    if (i == 2) cut = *lsn;
    ASSERT_TRUE((*wal)->WaitDurable(*lsn).ok());
  }
  wal->reset();

  std::vector<Rec> recs = ReplayAll(path, cut);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].payload, "insert 3");
  EXPECT_EQ(recs[1].payload, "insert 4");
  for (const Rec& r : recs) EXPECT_GT(r.lsn, cut);
}

TEST(WalTest, TornTailIsTruncatedOnOpen) {
  std::string path = TempPath("wal_torn.wal");
  {
    auto wal = Wal::Open(path, Wal::Options{});
    ASSERT_TRUE(wal.ok());
    auto l1 = (*wal)->Append(WalRecordKind::kConsult, "good record one");
    auto l2 = (*wal)->Append(WalRecordKind::kConsult, "good record two");
    ASSERT_TRUE(l2.ok());
    ASSERT_TRUE((*wal)->WaitDurable(*l2).ok());
    ASSERT_TRUE(l1.ok());
  }
  // Simulate a crash mid-append: chop bytes off the last record so its
  // payload is short.
  int64_t size = FileSize(path);
  ASSERT_GT(size, 8);
  ASSERT_EQ(::truncate(path.c_str(), size - 5), 0);

  auto reopened = Wal::Open(path, Wal::Options{});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::vector<Rec> recs = ReplayAll(path);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].payload, "good record one");

  // The torn tail is physically gone: a fresh append lands after the valid
  // prefix and the file replays clean.
  auto l3 = (*reopened)->Append(WalRecordKind::kConsult, "after the tear");
  ASSERT_TRUE(l3.ok());
  ASSERT_TRUE((*reopened)->WaitDurable(*l3).ok());
  EXPECT_GT(*l3, recs[0].lsn);
  reopened->reset();
  recs = ReplayAll(path);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[1].payload, "after the tear");
}

TEST(WalTest, CorruptRecordStopsReplayAtValidPrefix) {
  std::string path = TempPath("wal_corrupt.wal");
  {
    auto wal = Wal::Open(path, Wal::Options{});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(WalRecordKind::kConsult, "first").ok());
    auto l2 = (*wal)->Append(WalRecordKind::kConsult, "second");
    ASSERT_TRUE(l2.ok());
    ASSERT_TRUE((*wal)->WaitDurable(*l2).ok());
  }
  // Flip a byte inside the second record's payload (the last byte of the
  // file) so its CRC no longer matches.
  int64_t size = FileSize(path);
  ASSERT_GT(size, 0);
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(size - 1);
    char c = 0;
    f.read(&c, 1);
    c ^= 0x5a;
    f.seekp(size - 1);
    f.write(&c, 1);
  }
  std::vector<Rec> recs = ReplayAll(path);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].payload, "first");
}

TEST(WalTest, TruncateKeepsLsnsAscending) {
  std::string path = TempPath("wal_truncate.wal");
  auto wal = Wal::Open(path, Wal::Options{});
  ASSERT_TRUE(wal.ok());
  auto l1 = (*wal)->Append(WalRecordKind::kConsult, "before checkpoint");
  ASSERT_TRUE(l1.ok());
  ASSERT_TRUE((*wal)->WaitDurable(*l1).ok());
  ASSERT_TRUE((*wal)->Truncate().ok());
  EXPECT_EQ(FileSize(path), 0);

  // LSNs are never reused: post-truncate appends sort after the
  // checkpoint's last_lsn.
  auto l2 = (*wal)->Append(WalRecordKind::kConsult, "after checkpoint");
  ASSERT_TRUE(l2.ok());
  EXPECT_GT(*l2, *l1);
  ASSERT_TRUE((*wal)->WaitDurable(*l2).ok());
  wal->reset();
  std::vector<Rec> recs = ReplayAll(path, *l1);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].payload, "after checkpoint");
}

TEST(WalTest, ReserveThroughRaisesTheCounter) {
  std::string path = TempPath("wal_reserve.wal");
  auto wal = Wal::Open(path, Wal::Options{});
  ASSERT_TRUE(wal.ok());
  (*wal)->ReserveThrough(100);
  EXPECT_EQ((*wal)->last_lsn(), 100u);
  auto lsn = (*wal)->Append(WalRecordKind::kConsult, "x");
  ASSERT_TRUE(lsn.ok());
  EXPECT_GT(*lsn, 100u);
  // Reserving backwards is a no-op.
  (*wal)->ReserveThrough(5);
  EXPECT_EQ((*wal)->last_lsn(), *lsn);
}

TEST(WalTest, GroupCommitCoalescesConcurrentWaiters) {
  std::string path = TempPath("wal_group.wal");
  auto wal = Wal::Open(path, Wal::Options{.fsync = true, .group_commit = true});
  ASSERT_TRUE(wal.ok());
  constexpr int kWriters = 8;
  constexpr int kReps = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kReps; ++i) {
        auto lsn = (*wal)->Append(
            WalRecordKind::kSql,
            "w" + std::to_string(t) + ":" + std::to_string(i));
        if (!lsn.ok() || !(*wal)->WaitDurable(*lsn).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ((*wal)->appends(), kWriters * kReps);
  // The whole point of group commit: far fewer fsyncs than commits.
  // (>= 1 because at least one flush must have happened; the upper bound
  // is loose since timing decides batch sizes.)
  EXPECT_GE((*wal)->fsyncs(), 1);
  EXPECT_LE((*wal)->fsyncs(), (*wal)->appends());
  wal->reset();
  EXPECT_EQ(ReplayAll(path).size(), static_cast<size_t>(kWriters * kReps));
}

TEST(WalTest, NoFsyncModeStillReplays) {
  std::string path = TempPath("wal_nofsync.wal");
  auto wal =
      Wal::Open(path, Wal::Options{.fsync = false, .group_commit = false});
  ASSERT_TRUE(wal.ok());
  auto lsn = (*wal)->Append(WalRecordKind::kConsult, "fast and loose");
  ASSERT_TRUE(lsn.ok());
  ASSERT_TRUE((*wal)->WaitDurable(*lsn).ok());
  EXPECT_EQ((*wal)->fsyncs(), 0);
  wal->reset();
  ASSERT_EQ(ReplayAll(path).size(), 1u);
}

TEST(WalTest, MissingFileReplaysNothing) {
  std::string path = TempPath("wal_missing.wal");
  int calls = 0;
  Status s = Wal::Replay(path, 0,
                         [&](uint64_t, WalRecordKind, std::string_view) {
                           ++calls;
                           return Status::OK();
                         });
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace dkb
