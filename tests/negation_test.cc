#include <gtest/gtest.h>

#include <set>

#include "datalog/parser.h"
#include "km/eval_graph.h"
#include "km/rule_sql.h"
#include "km/type_checker.h"
#include "testbed/testbed.h"

namespace dkb {
namespace {

using datalog::ParseProgram;
using datalog::ParseRule;
using lfp::LfpStrategy;

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

TEST(NegationParseTest, NotKeyword) {
  auto rule = ParseRule("bachelor(X) :- man(X), not married(X).");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  ASSERT_EQ(rule->body.size(), 2u);
  EXPECT_FALSE(rule->body[0].negated);
  EXPECT_TRUE(rule->body[1].negated);
  EXPECT_EQ(rule->body[1].predicate, "married");
}

TEST(NegationParseTest, PrologStyleBackslashPlus) {
  auto rule = ParseRule("p(X) :- q(X), \\+ r(X).");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_TRUE(rule->body[1].negated);
}

TEST(NegationParseTest, ToStringRoundTrip) {
  auto rule = ParseRule("p(X) :- q(X), not r(X, 3).");
  ASSERT_TRUE(rule.ok());
  auto reparsed = ParseRule(rule->ToString());
  ASSERT_TRUE(reparsed.ok()) << rule->ToString();
  EXPECT_EQ(*rule, *reparsed);
}

TEST(NegationParseTest, PredicateNamedNotStillWorks) {
  // "not(" with no space parses as a predicate named not.
  auto rule = ParseRule("p(X) :- not(X).");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->body[0].predicate, "not");
  EXPECT_FALSE(rule->body[0].negated);
}

TEST(NegationParseTest, NegationDistinguishesAtoms) {
  auto a = ParseRule("p(X) :- q(X), not r(X).");
  auto b = ParseRule("p(X) :- q(X), r(X).");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(*a == *b);
}

// ---------------------------------------------------------------------------
// Safety and stratification
// ---------------------------------------------------------------------------

const std::map<std::string, km::PredicateTypes> kBase = {
    {"man", {DataType::kVarchar}},
    {"married", {DataType::kVarchar}},
    {"e", {DataType::kVarchar, DataType::kVarchar}},
};

TEST(NegationSafetyTest, NegatedVarMustBePositivelyBound) {
  auto program = ParseProgram("p(X) :- man(X), not e(X, Y).");
  ASSERT_TRUE(program.ok());
  auto result = km::TypeCheck(program->rules, kBase);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kSemanticError);
}

TEST(NegationSafetyTest, HeadVarNeedsPositiveBinding) {
  // X appears only in a negated atom: unsafe.
  auto program = ParseProgram("p(X) :- man(q), not married(X).");
  ASSERT_TRUE(program.ok());
  auto result = km::TypeCheck(program->rules, kBase);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kSemanticError);
}

TEST(NegationSafetyTest, SafeRulePassesAndInfersTypes) {
  auto program = ParseProgram("bachelor(X) :- man(X), not married(X).");
  ASSERT_TRUE(program.ok());
  auto result = km::TypeCheck(program->rules, kBase);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->derived_types.at("bachelor"),
            (km::PredicateTypes{DataType::kVarchar}));
}

TEST(NegationStratificationTest, RecursionThroughNegationRejected) {
  auto program = ParseProgram(
      "win(X) :- e(X, Y), not win(Y).\n");
  ASSERT_TRUE(program.ok());
  auto order = km::BuildEvaluationOrder(program->rules, {"win"});
  ASSERT_FALSE(order.ok());
  EXPECT_EQ(order.status().code(), StatusCode::kSemanticError);
  EXPECT_NE(order.status().message().find("stratified"), std::string::npos);
}

TEST(NegationStratificationTest, MutualRecursionThroughNegationRejected) {
  auto program = ParseProgram(
      "a(X) :- e(X, Y), b(Y).\n"
      "b(X) :- e(X, Y), not a(Y).\n");
  ASSERT_TRUE(program.ok());
  auto order = km::BuildEvaluationOrder(program->rules, {"a", "b"});
  ASSERT_FALSE(order.ok());
}

TEST(NegationStratificationTest, NegationAcrossStrataAccepted) {
  auto program = ParseProgram(
      "reach(X, Y) :- e(X, Y).\n"
      "reach(X, Y) :- e(X, Z), reach(Z, Y).\n"
      "unreach(X, Y) :- node(X), node(Y), not reach(X, Y).\n");
  ASSERT_TRUE(program.ok());
  auto order =
      km::BuildEvaluationOrder(program->rules, {"reach", "unreach"});
  ASSERT_TRUE(order.ok()) << order.status().ToString();
  // reach clique must precede the unreach predicate node.
  ASSERT_EQ(order->nodes.size(), 2u);
  EXPECT_EQ(order->nodes[0].kind, km::EvalNode::Kind::kClique);
  EXPECT_EQ(order->nodes[1].predicate, "unreach");
}

// ---------------------------------------------------------------------------
// SQL pipeline
// ---------------------------------------------------------------------------

Result<km::RelationBinding> TypedResolver(const datalog::Atom& atom,
                                          size_t) {
  km::RelationBinding b;
  b.table = atom.predicate + "_tbl";
  for (size_t i = 0; i < atom.arity(); ++i) {
    b.columns.push_back("c" + std::to_string(i));
    b.types.push_back(DataType::kVarchar);
  }
  return b;
}

TEST(NegationSqlTest, PositiveRuleIsSingleStatement) {
  auto rule = ParseRule("p(X) :- q(X).");
  ASSERT_TRUE(rule.ok());
  auto program = km::RuleToSqlProgram(*rule, TypedResolver, "tgt", "#x");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_TRUE(program->bind_tables.empty());
  ASSERT_EQ(program->statements.size(), 1u);
  EXPECT_NE(program->statements[0].find("INSERT INTO tgt"),
            std::string::npos);
}

TEST(NegationSqlTest, PipelineShape) {
  auto rule = ParseRule("p(X, Y) :- q(X, Z), e(Z, Y), not r(X, Y).");
  ASSERT_TRUE(rule.ok());
  auto program = km::RuleToSqlProgram(*rule, TypedResolver, "tgt", "#x");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  // Two binding tables (before/after the one negated atom), three stmts.
  ASSERT_EQ(program->bind_tables.size(), 2u);
  ASSERT_EQ(program->statements.size(), 3u);
  // Binding schema covers X, Z, Y.
  EXPECT_EQ(program->bind_tables[0].schema.num_columns(), 3u);
  EXPECT_NE(program->statements[1].find("EXCEPT"), std::string::npos);
  EXPECT_NE(program->statements[2].find("INSERT INTO tgt"),
            std::string::npos);
}

TEST(NegationSqlTest, RuleToSelectRejectsNegation) {
  auto rule = ParseRule("p(X) :- q(X), not r(X).");
  ASSERT_TRUE(rule.ok());
  auto select = km::RuleToSelect(*rule, TypedResolver);
  ASSERT_FALSE(select.ok());
  EXPECT_EQ(select.status().code(), StatusCode::kInvalidArgument);
}

TEST(NegationSqlTest, AllNegatedBodyRejected) {
  auto rule = ParseRule("p(a) :- not q(a).");
  ASSERT_TRUE(rule.ok());
  auto program = km::RuleToSqlProgram(*rule, TypedResolver, "tgt", "#x");
  ASSERT_FALSE(program.ok());
}

// ---------------------------------------------------------------------------
// End-to-end across strategies
// ---------------------------------------------------------------------------

std::set<std::string> AnswerSet(const QueryResult& result) {
  std::set<std::string> out;
  for (const Tuple& row : result.rows) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    out.insert(key);
  }
  return out;
}

class NegationE2eTest : public ::testing::TestWithParam<LfpStrategy> {
 protected:
  void SetUp() override {
    auto tb = testbed::Testbed::Create();
    ASSERT_TRUE(tb.ok());
    tb_ = std::move(*tb);
  }

  QueryResult Query(const std::string& goal) {
    testbed::QueryOptions opts =
        testbed::QueryOptions::SemiNaive().WithStrategy(GetParam());
    auto outcome = tb_->Query(goal, opts);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    return outcome.ok() ? std::move(outcome->result) : QueryResult{};
  }

  std::unique_ptr<testbed::Testbed> tb_;
};

TEST_P(NegationE2eTest, Bachelors) {
  ASSERT_TRUE(tb_->Consult(
                     "bachelor(X) :- man(X), not married(X).\n"
                     "man(al).\nman(bo).\nman(cy).\n"
                     "married(bo).\n")
                  .ok());
  QueryResult r = Query("?- bachelor(X).");
  EXPECT_EQ(AnswerSet(r), (std::set<std::string>{"al|", "cy|"}));
}

TEST_P(NegationE2eTest, PerBindingNotPerHeadSemantics) {
  // p(X) :- q(X, Y), not r(Y): a is blocked on Y=1 but derivable via Y=2.
  ASSERT_TRUE(tb_->Consult(
                     "p(X) :- q(X, Y), not r(Y).\n"
                     "q(a, 1).\nq(a, 2).\nq(b, 1).\n"
                     "r(1).\n")
                  .ok());
  QueryResult r = Query("?- p(X).");
  EXPECT_EQ(AnswerSet(r), (std::set<std::string>{"a|"}));
}

TEST_P(NegationE2eTest, UnreachablePairs) {
  ASSERT_TRUE(tb_->Consult(
                     "reach(X, Y) :- e(X, Y).\n"
                     "reach(X, Y) :- e(X, Z), reach(Z, Y).\n"
                     "unreach(X, Y) :- node(X), node(Y), not reach(X, Y).\n"
                     "node(a).\nnode(b).\nnode(c).\n"
                     "e(a, b).\ne(b, c).\n")
                  .ok());
  QueryResult r = Query("?- unreach(a, Y).");
  EXPECT_EQ(AnswerSet(r), (std::set<std::string>{"a|"}));  // a !reach a
  QueryResult rc = Query("?- unreach(c, Y).");
  EXPECT_EQ(AnswerSet(rc),
            (std::set<std::string>{"a|", "b|", "c|"}));
}

TEST_P(NegationE2eTest, NegationInRecursiveRuleOverLowerStratum) {
  // Paths that avoid blocked nodes.
  ASSERT_TRUE(tb_->Consult(
                     "safe(X, Y) :- e(X, Y), not blocked(Y).\n"
                     "safe(X, Y) :- safe(X, Z), e(Z, Y), not blocked(Y).\n"
                     "blocked(c).\n"
                     "e(a, b).\ne(b, c).\ne(c, d).\ne(b, d).\n")
                  .ok());
  QueryResult r = Query("?- safe(a, W).");
  // c is blocked; d still reachable via b->d.
  EXPECT_EQ(AnswerSet(r), (std::set<std::string>{"b|", "d|"}));
}

TEST_P(NegationE2eTest, TwoNegatedAtoms) {
  ASSERT_TRUE(tb_->Consult(
                     "pick(X) :- cand(X), not bad(X), not ugly(X).\n"
                     "cand(p).\ncand(q).\ncand(s).\ncand(t).\n"
                     "bad(q).\nugly(s).\n")
                  .ok());
  QueryResult r = Query("?- pick(X).");
  EXPECT_EQ(AnswerSet(r), (std::set<std::string>{"p|", "t|"}));
}

TEST_P(NegationE2eTest, NegatedAtomWithConstant) {
  ASSERT_TRUE(tb_->Consult(
                     "ok(X) :- cand(X), not banned(X, here).\n"
                     "cand(p).\ncand(q).\n"
                     "banned(q, here).\nbanned(p, there).\n")
                  .ok());
  QueryResult r = Query("?- ok(X).");
  EXPECT_EQ(AnswerSet(r), (std::set<std::string>{"p|"}));
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, NegationE2eTest,
                         ::testing::Values(LfpStrategy::kNaive,
                                           LfpStrategy::kSemiNaive,
                                           LfpStrategy::kNative),
                         [](const auto& info) {
                           std::string name = lfp::StrategyName(info.param);
                           std::string out;
                           for (char c : name) {
                             if (std::isalnum(static_cast<unsigned char>(c)))
                               out += c;
                           }
                           return out;
                         });

TEST(NegationE2eSingleTest, UnstratifiedProgramRejectedAtQueryTime) {
  auto tb = testbed::Testbed::Create();
  ASSERT_TRUE(tb.ok());
  ASSERT_TRUE((*tb)->Consult("win(X) :- move(X, Y), not win(Y).\n"
                             "move(a, b).\n")
                  .ok());
  auto outcome = (*tb)->Query("?- win(X).");
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kSemanticError);
}

TEST(NegationE2eSingleTest, MagicFallsBackToIdentityWithNegation) {
  auto tb = testbed::Testbed::Create();
  ASSERT_TRUE(tb.ok());
  ASSERT_TRUE((*tb)->Consult(
                     "safe(X, Y) :- e(X, Y), not blocked(Y).\n"
                     "safe(X, Y) :- safe(X, Z), e(Z, Y), not blocked(Y).\n"
                     "blocked(c).\n"
                     "e(a, b).\ne(b, c).\ne(b, d).\n")
                  .ok());
  testbed::QueryOptions magic = testbed::QueryOptions::Magic();
  auto outcome = (*tb)->Query("?- safe(a, W).", magic);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(AnswerSet(outcome->result),
            (std::set<std::string>{"b|", "d|"}));
}

TEST(NegationE2eSingleTest, StrategiesAgreeOnLargerWorkload) {
  auto tb = testbed::Testbed::Create();
  ASSERT_TRUE(tb.ok());
  // Reach-avoiding-blocked over a grid-ish graph.
  std::string program =
      "safe(X, Y) :- e(X, Y), not blocked(Y).\n"
      "safe(X, Y) :- safe(X, Z), e(Z, Y), not blocked(Y).\n";
  for (int i = 0; i < 40; ++i) {
    program += "e(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
               ").\n";
    if (i % 4 == 0) {
      program += "e(n" + std::to_string(i) + ", n" +
                 std::to_string((i + 7) % 41) + ").\n";
    }
    if (i % 9 == 0) {
      program += "blocked(n" + std::to_string(i + 2) + ").\n";
    }
  }
  ASSERT_TRUE((*tb)->Consult(program).ok());
  std::set<std::string> reference;
  for (auto strategy : {LfpStrategy::kNaive, LfpStrategy::kSemiNaive,
                        LfpStrategy::kNative}) {
    testbed::QueryOptions opts =
        testbed::QueryOptions::SemiNaive().WithStrategy(strategy);
    auto outcome = (*tb)->Query("?- safe(n0, W).", opts);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    auto answers = AnswerSet(outcome->result);
    if (reference.empty()) {
      reference = answers;
      EXPECT_GT(reference.size(), 10u);
    } else {
      EXPECT_EQ(answers, reference) << lfp::StrategyName(strategy);
    }
  }
}

}  // namespace
}  // namespace dkb
