#include <gtest/gtest.h>

#include "datalog/ast.h"
#include "datalog/parser.h"

namespace dkb::datalog {
namespace {

TEST(DatalogParserTest, ParsesRule) {
  auto rule = ParseRule("ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->head.predicate, "ancestor");
  ASSERT_EQ(rule->body.size(), 2u);
  EXPECT_EQ(rule->body[0].predicate, "parent");
  EXPECT_TRUE(rule->head.args[0].is_variable());
  EXPECT_EQ(rule->head.args[0].var, "X");
  EXPECT_FALSE(rule->is_fact());
}

TEST(DatalogParserTest, ParsesGroundFactConstants) {
  auto rule = ParseRule("parent(john, mary).");
  ASSERT_TRUE(rule.ok());
  EXPECT_TRUE(rule->is_fact());
  EXPECT_EQ(rule->head.args[0].value, Value("john"));
}

TEST(DatalogParserTest, ConstantKinds) {
  auto rule = ParseRule("p(abc, 42, -7, 'Quoted Name', \"double\").");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  const auto& args = rule->head.args;
  EXPECT_EQ(args[0].value, Value("abc"));
  EXPECT_EQ(args[1].value, Value(static_cast<int64_t>(42)));
  EXPECT_EQ(args[2].value, Value(static_cast<int64_t>(-7)));
  EXPECT_EQ(args[3].value, Value("Quoted Name"));
  EXPECT_EQ(args[4].value, Value("double"));
}

TEST(DatalogParserTest, UnderscoreAndUppercaseAreVariables) {
  auto rule = ParseRule("p(X, _y, Zed) :- q(X, _y, Zed).");
  ASSERT_TRUE(rule.ok());
  for (const Term& t : rule->head.args) EXPECT_TRUE(t.is_variable());
}

TEST(DatalogParserTest, ProgramClassifiesClauses) {
  auto program = ParseProgram(
      "% the ancestor program\n"
      "ancestor(X,Y) :- parent(X,Y).\n"
      "ancestor(X,Y) :- parent(X,Z), ancestor(Z,Y).\n"
      "parent(john, mary).\n"
      "parent(mary, sue).\n"
      "?- ancestor(john, W).\n");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->rules.size(), 2u);
  EXPECT_EQ(program->facts.size(), 2u);
  ASSERT_EQ(program->queries.size(), 1u);
  EXPECT_EQ(program->queries[0].predicate, "ancestor");
}

TEST(DatalogParserTest, FactWithVariableRejected) {
  EXPECT_FALSE(ParseProgram("parent(X, mary).").ok());
}

TEST(DatalogParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseRule("p(X Y) :- q(X).").ok());
  EXPECT_FALSE(ParseRule("p(X) :- .").ok());
  EXPECT_FALSE(ParseRule("(X) :- q(X).").ok());
  EXPECT_FALSE(ParseRule("p(X) :- q(X). extra").ok());
  EXPECT_FALSE(ParseProgram("p(a)  q(b).").ok());
  EXPECT_FALSE(ParseRule("p('unterminated).").ok());
}

TEST(DatalogParserTest, QueryParsing) {
  auto q1 = ParseQuery("?- ancestor(john, W).");
  ASSERT_TRUE(q1.ok());
  EXPECT_EQ(q1->predicate, "ancestor");
  auto q2 = ParseQuery("ancestor(john, W)");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->args[1].var, "W");
}

TEST(DatalogAstTest, ToStringRoundTrip) {
  const char* texts[] = {
      "ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).",
      "p(a, 3) :- q(a, X), r(X, 3).",
      "edge(n1, n2).",
      "p('has space', X) :- q(X).",
  };
  for (const char* text : texts) {
    auto rule = ParseRule(text);
    ASSERT_TRUE(rule.ok()) << text;
    auto reparsed = ParseRule(rule->ToString());
    ASSERT_TRUE(reparsed.ok()) << rule->ToString();
    EXPECT_EQ(*rule, *reparsed) << text;
  }
}

TEST(DatalogAstTest, EqualityIsStructural) {
  auto a = ParseRule("p(X) :- q(X).");
  auto b = ParseRule("p(X) :- q(X).");
  auto c = ParseRule("p(Y) :- q(Y).");  // different variable names
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_FALSE(*a == *c);  // no alpha-equivalence (by design)
}

TEST(DatalogAstTest, ZeroArityAtomParses) {
  auto rule = ParseRule("alarm() :- sensor(hot).");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->head.arity(), 0u);
}

}  // namespace
}  // namespace dkb::datalog
