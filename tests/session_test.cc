#include "testbed/session.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "testbed/testbed.h"
#include "workload/data_gen.h"
#include "workload/queries.h"

namespace dkb::testbed {
namespace {

std::set<std::string> AnswerSet(const QueryResult& result) {
  std::set<std::string> out;
  for (const Tuple& row : result.rows) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    out.insert(key);
  }
  return out;
}

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto tb = Testbed::Create();
    ASSERT_TRUE(tb.ok()) << tb.status().ToString();
    tb_ = std::move(*tb);
    Status s = tb_->Consult(workload::AncestorRules() +
                            "parent(john, mary).\n"
                            "parent(mary, sue).\n"
                            "parent(sue, tim).\n");
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  std::unique_ptr<Testbed> tb_;
};

TEST_F(SessionTest, SessionAgreesWithDirectQuery) {
  auto direct = tb_->Query("ancestor(john, W)");
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  auto session = tb_->OpenSession();
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto via_session = (*session)->Query("ancestor(john, W)");
  ASSERT_TRUE(via_session.ok()) << via_session.status().ToString();

  EXPECT_EQ(AnswerSet(direct->result), AnswerSet(via_session->result));
  EXPECT_EQ(via_session->result.rows.size(), 3u);
}

TEST_F(SessionTest, ConcurrentSessionsAgreeWithSerial) {
  auto serial = tb_->Query("ancestor(john, W)");
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  const std::set<std::string> expected = AnswerSet(serial->result);

  constexpr int kThreads = 4;
  constexpr int kReps = 8;
  std::vector<std::unique_ptr<Session>> sessions;
  for (int t = 0; t < kThreads; ++t) {
    auto s = tb_->OpenSession();
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    sessions.push_back(std::move(*s));
  }
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kReps; ++i) {
        auto r = sessions[t]->Query("ancestor(john, W)");
        if (!r.ok() || AnswerSet(r->result) != expected) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(SessionTest, SnapshotIsolationUntilRefresh) {
  auto session = tb_->OpenSession();
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto before = (*session)->Query("ancestor(john, W)");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->result.rows.size(), 3u);
  uint64_t epoch_before = (*session)->epoch();

  // A write through the testbed bumps the epoch; the next session query
  // refreshes its snapshot and sees the new fact.
  Status s = tb_->AddFacts("parent", {{Value("tim"), Value("una")}});
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(tb_->epoch(), epoch_before);

  auto after = (*session)->Query("ancestor(john, W)");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->result.rows.size(), 4u);
  EXPECT_GT((*session)->epoch(), epoch_before);
}

TEST_F(SessionTest, RuleEditsInvalidateSessionCache) {
  auto session = tb_->OpenSession();
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  QueryOptions cached = QueryOptions::SemiNaive().WithCache();

  auto first = (*session)->Query("ancestor(john, W)", cached);
  ASSERT_TRUE(first.ok());
  auto second = (*session)->Query("ancestor(john, W)", cached);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->report.from_cache);

  // A rule edit moves the epoch; the session must recompile, not reuse the
  // stale program.
  Status s = tb_->AddRule("ancestor(X, X) :- parent(X, Y).");
  ASSERT_TRUE(s.ok()) << s.ToString();
  auto third = (*session)->Query("ancestor(john, W)", cached);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_FALSE(third->report.from_cache);
  EXPECT_EQ(third->result.rows.size(), 4u);  // john himself now included
}

TEST_F(SessionTest, WriterSerializesAgainstConcurrentReaders) {
  constexpr int kThreads = 3;
  constexpr int kReps = 6;
  std::vector<std::unique_ptr<Session>> sessions;
  for (int t = 0; t < kThreads; ++t) {
    auto s = tb_->OpenSession();
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    sessions.push_back(std::move(*s));
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kReps; ++i) {
        auto r = sessions[t]->Query("ancestor(john, W)");
        // Readers see either the pre- or post-write snapshot, never a
        // partial one: 3 or 3+i new facts, all reachable from john.
        if (!r.ok() || r->result.rows.size() < 3u) failures.fetch_add(1);
      }
    });
  }
  // Writer thread interleaves fact loads; each is serialized against the
  // session clones by the testbed's reader-writer lock.
  std::thread writer([&]() {
    for (int i = 0; i < 4; ++i) {
      std::string child = "extra" + std::to_string(i);
      std::string parent = i == 0 ? "tim" : "extra" + std::to_string(i - 1);
      Status s = tb_->AddFacts("parent", {{Value(parent), Value(child)}});
      if (!s.ok()) failures.fetch_add(1);
    }
  });
  for (auto& th : threads) th.join();
  writer.join();
  EXPECT_EQ(failures.load(), 0);

  // After all writes land, every session converges on the final answer.
  for (auto& session : sessions) {
    auto r = session->Query("ancestor(john, W)");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->result.rows.size(), 7u);
  }
}

TEST_F(SessionTest, RepeatedQueriesReuseSnapshot) {
  auto session = tb_->OpenSession();
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  ASSERT_TRUE((*session)->Query("ancestor(john, W)").ok());
  uint64_t epoch = (*session)->epoch();
  ASSERT_TRUE((*session)->Query("ancestor(mary, W)").ok());
  EXPECT_EQ((*session)->epoch(), epoch) << "snapshot re-cloned needlessly";
}

}  // namespace
}  // namespace dkb::testbed
