// Robustness: hostile and mutated inputs must produce error Statuses, never
// crashes, and must leave the system usable afterwards.

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "datalog/parser.h"
#include "rdbms/database.h"
#include "sql/parser.h"
#include "testbed/testbed.h"

namespace dkb {
namespace {

std::string RandomBytes(Rng* rng, size_t n) {
  // Printable-ish garbage with occasional structure characters.
  static const char kChars[] =
      "abcXYZ012 ,.()'\"<>=!:-?%\\\t\n_#;*+[]{}";
  std::string out;
  for (size_t i = 0; i < n; ++i) {
    out += kChars[rng->Uniform(0, sizeof(kChars) - 2)];
  }
  return out;
}

TEST(RobustnessTest, SqlParserSurvivesGarbage) {
  Rng rng(2024);
  for (int i = 0; i < 500; ++i) {
    std::string input = RandomBytes(&rng, rng.Uniform(1, 120));
    auto result = sql::ParseStatement(input);
    // Either parses (unlikely) or errors; must not crash.
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST(RobustnessTest, SqlParserSurvivesMutatedStatements) {
  Rng rng(7);
  const std::string base =
      "SELECT DISTINCT a.x, b.y FROM t a, u b WHERE a.x = b.y AND a.z "
      "IN (1, 2) ORDER BY 1 LIMIT 5";
  for (int i = 0; i < 500; ++i) {
    std::string mutated = base;
    int edits = static_cast<int>(rng.Uniform(1, 4));
    for (int e = 0; e < edits; ++e) {
      size_t pos = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(mutated.size()) - 1));
      switch (rng.Uniform(0, 2)) {
        case 0:
          mutated.erase(pos, 1);
          break;
        case 1:
          mutated.insert(pos, 1, static_cast<char>(rng.Uniform(32, 126)));
          break;
        default:
          mutated[pos] = static_cast<char>(rng.Uniform(32, 126));
      }
    }
    auto result = sql::ParseStatement(mutated);
    (void)result;  // outcome irrelevant; absence of crash is the assertion
  }
}

TEST(RobustnessTest, DatalogParserSurvivesGarbage) {
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    std::string input = RandomBytes(&rng, rng.Uniform(1, 100));
    auto program = datalog::ParseProgram(input);
    (void)program;
    auto rule = datalog::ParseRule(input);
    (void)rule;
  }
}

TEST(RobustnessTest, DatabaseUsableAfterErrors) {
  Database db;
  ASSERT_TRUE(db.ExecuteAll("CREATE TABLE t (x INT);"
                            "INSERT INTO t VALUES (1)")
                  .ok());
  // A pile of failing statements...
  EXPECT_FALSE(db.Execute("SELECT * FROM missing").ok());
  EXPECT_FALSE(db.Execute("INSERT INTO t VALUES ('wrong type')").ok());
  EXPECT_FALSE(db.Execute("CREATE TABLE t (x INT)").ok());
  EXPECT_FALSE(db.Execute("SELECT bogus FROM t").ok());
  EXPECT_FALSE(db.Execute("nonsense ( here").ok());
  // ...must not corrupt state.
  auto count = db.QueryCount("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1);
}

TEST(RobustnessTest, TestbedUsableAfterQueryErrors) {
  auto tb_or = testbed::Testbed::Create();
  ASSERT_TRUE(tb_or.ok());
  auto tb = std::move(*tb_or);
  ASSERT_TRUE(tb->Consult("anc(X,Y) :- par(X,Y).\n"
                          "anc(X,Y) :- par(X,Z), anc(Z,Y).\n"
                          "par(a, b).\n")
                  .ok());
  EXPECT_FALSE(tb->Query("?- ghost(X).").ok());
  EXPECT_FALSE(tb->Query("?- anc(X).").ok());           // arity
  EXPECT_FALSE(tb->Query("?- anc(1, X).").ok());        // type
  EXPECT_FALSE(tb->Consult("broken(X :- q(X).").ok());  // syntax
  // Unsafe rule poisons only queries that reach it.
  ASSERT_TRUE(tb->AddRule("bad(X, Q) :- par(X, Y2).").ok());
  EXPECT_FALSE(tb->Query("?- bad(a, W).").ok());
  auto good = tb->Query("?- anc(a, W).");
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good->result.rows.size(), 1u);
  // No leaked idb/temp tables from the failed attempts.
  for (const std::string& name : tb->db().catalog().TableNames()) {
    EXPECT_EQ(name.find('#'), std::string::npos) << name;
    EXPECT_NE(name, "idb_anc");
  }
}

TEST(RobustnessTest, RetractRule) {
  auto tb_or = testbed::Testbed::Create();
  ASSERT_TRUE(tb_or.ok());
  auto tb = std::move(*tb_or);
  ASSERT_TRUE(tb->Consult("p(X) :- e(X, Y2).\np(X) :- f(X, X).\n"
                          "e(a, b).\nf(c, c).\n")
                  .ok());
  ASSERT_TRUE(tb->RetractRule("p(X) :- f(X, X).").ok());
  EXPECT_EQ(tb->workspace().num_rules(), 1u);
  auto outcome = tb->Query("?- p(X).");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->result.rows.size(), 1u);  // only via e
  EXPECT_EQ(tb->RetractRule("p(X) :- f(X, X).").code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(tb->RetractRule("p(X :-").ok());
}

}  // namespace
}  // namespace dkb
