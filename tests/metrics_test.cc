// Metrics registry: counters, gauges, power-of-two histograms, and the
// JSON snapshot.

#include "common/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace dkb::metrics {
namespace {

TEST(MetricsTest, CounterAddsAndResets) {
  MetricsRegistry registry;
  Counter& c = registry.counter("test.count");
  EXPECT_EQ(c.value(), 0);
  c.Add(3);
  c.Add(4);
  EXPECT_EQ(c.value(), 7);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(MetricsTest, RegistryReturnsSameInstance) {
  MetricsRegistry registry;
  Counter& a = registry.counter("same.counter");
  Counter& b = registry.counter("same.counter");
  EXPECT_EQ(&a, &b);
  a.Add(1);
  EXPECT_EQ(b.value(), 1);
  // Distinct kinds with distinct names coexist.
  registry.gauge("same.gauge").Set(5);
  EXPECT_EQ(registry.gauge("same.gauge").value(), 5);
}

TEST(MetricsTest, CounterIsThreadSafe) {
  MetricsRegistry registry;
  Counter& c = registry.counter("concurrent.count");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c]() {
      for (int i = 0; i < kAddsPerThread; ++i) c.Add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kAddsPerThread);
}

TEST(MetricsTest, GaugeSetsAndOverwrites) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("test.gauge");
  g.Set(42);
  EXPECT_EQ(g.value(), 42);
  g.Set(-7);
  EXPECT_EQ(g.value(), -7);
}

TEST(MetricsTest, HistogramBasicStats) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("test.hist");
  for (int64_t v : {1, 2, 4, 8, 100}) h.Observe(v);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), 115);
  EXPECT_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.mean(), 23.0);
}

TEST(MetricsTest, HistogramQuantilesAreOrdered) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("quantile.hist");
  for (int64_t v = 1; v <= 1000; ++v) h.Observe(v);
  int64_t p50 = h.ApproxQuantile(0.5);
  int64_t p99 = h.ApproxQuantile(0.99);
  EXPECT_LE(p50, p99);
  // Power-of-two buckets: p50 of 1..1000 lands in the bucket holding 500.
  EXPECT_GE(p50, 256);
  EXPECT_LE(p50, 1024);
}

TEST(MetricsTest, HistogramHandlesNonPositive) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("edge.hist");
  h.Observe(0);
  h.Observe(-5);
  h.Observe(1);
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.max(), 1);
}

TEST(MetricsTest, SnapshotJsonContainsAllKinds) {
  MetricsRegistry registry;
  registry.counter("dkb.test.count").Add(2);
  registry.gauge("dkb.test.gauge").Set(9);
  registry.histogram("dkb.test.hist").Observe(64);
  std::string json = registry.SnapshotJson();
  EXPECT_NE(json.find("\"dkb.test.count\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dkb.test.gauge\": 9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dkb.test.hist\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
}

TEST(MetricsTest, ResetAllClearsEverything) {
  MetricsRegistry registry;
  registry.counter("r.count").Add(5);
  registry.gauge("r.gauge").Set(5);
  registry.histogram("r.hist").Observe(5);
  registry.ResetAll();
  EXPECT_EQ(registry.counter("r.count").value(), 0);
  EXPECT_EQ(registry.gauge("r.gauge").value(), 0);
  EXPECT_EQ(registry.histogram("r.hist").count(), 0);
}

TEST(MetricsTest, GlobalRegistryIsStable) {
  MetricsRegistry& a = GlobalMetrics();
  MetricsRegistry& b = GlobalMetrics();
  EXPECT_EQ(&a, &b);
}

TEST(MetricsTest, RenderPrometheusCoversAllKindsAndSanitizesNames) {
  MetricsRegistry registry;
  registry.counter("dkb.test.count").Add(2);
  registry.gauge("dkb.test.gauge").Set(9);
  registry.histogram("dkb.test.hist").Observe(64);
  std::string text = registry.RenderPrometheus();
  // Dots become underscores; every sample sits under its own TYPE line.
  EXPECT_NE(text.find("# TYPE dkb_test_count counter\ndkb_test_count 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE dkb_test_gauge gauge\ndkb_test_gauge 9\n"),
            std::string::npos)
      << text;
  // Histograms render as five single-sample gauge families.
  for (const char* suffix : {"_count", "_sum", "_max", "_p50", "_p99"}) {
    EXPECT_NE(text.find(std::string("# TYPE dkb_test_hist") + suffix),
              std::string::npos)
        << suffix;
  }
  EXPECT_NE(text.find("dkb_test_hist_count 1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("dkb_test_hist_sum 64\n"), std::string::npos) << text;
  std::string error;
  EXPECT_TRUE(ValidatePrometheusText(text, &error)) << error;
}

TEST(MetricsTest, ValidatePrometheusTextRejectsMalformedInput) {
  std::string error;
  EXPECT_TRUE(ValidatePrometheusText(
      "# free-form comment\n# TYPE x counter\nx 1\n", &error))
      << error;
  // An exposition with no samples at all is a scrape bug, not "vacuously
  // valid".
  EXPECT_FALSE(ValidatePrometheusText("", &error));
  EXPECT_FALSE(ValidatePrometheusText("# TYPE x counter\n", &error));
  // Bad metric type.
  EXPECT_FALSE(ValidatePrometheusText("# TYPE x flavour\nx 1\n", &error));
  EXPECT_NE(error.find("flavour"), std::string::npos) << error;
  // Sample name must start with [a-zA-Z_:].
  EXPECT_FALSE(ValidatePrometheusText("9metric 1\n", &error));
  // Sample line needs a value.
  EXPECT_FALSE(ValidatePrometheusText("lonely_name\n", &error));
}

TEST(MetricsTest, StructuredSnapshotCoversAllKinds) {
  MetricsRegistry registry;
  registry.counter("snap.count").Add(3);
  registry.gauge("snap.gauge").Set(-2);
  for (int64_t v = 1; v <= 100; ++v) {
    registry.histogram("snap.hist").Observe(v);
  }
  std::vector<MetricSample> samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  // Counters first, then gauges, then histograms (each sorted by name).
  EXPECT_EQ(samples[0].name, "snap.count");
  EXPECT_EQ(samples[0].kind, "counter");
  EXPECT_EQ(samples[0].value, 3);
  EXPECT_EQ(samples[1].name, "snap.gauge");
  EXPECT_EQ(samples[1].kind, "gauge");
  EXPECT_EQ(samples[1].value, -2);
  EXPECT_EQ(samples[2].name, "snap.hist");
  EXPECT_EQ(samples[2].kind, "histogram");
  EXPECT_EQ(samples[2].value, 100);  // sample count
  EXPECT_EQ(samples[2].sum, 5050);
  EXPECT_EQ(samples[2].max, 100);
  EXPECT_LE(samples[2].p50, samples[2].p99);
}

TEST(MetricsTest, ScopedResetIsolatesGlobalState) {
  GlobalMetrics().counter("scoped.count").Add(7);
  {
    ScopedMetricsReset scoped;
    // Entry reset: earlier activity is invisible inside the scope.
    EXPECT_EQ(GlobalMetrics().counter("scoped.count").value(), 0);
    GlobalMetrics().counter("scoped.count").Add(2);
    EXPECT_EQ(GlobalMetrics().counter("scoped.count").value(), 2);
  }
  // Exit reset: nothing leaks to whatever test runs next.
  EXPECT_EQ(GlobalMetrics().counter("scoped.count").value(), 0);
}

}  // namespace
}  // namespace dkb::metrics
