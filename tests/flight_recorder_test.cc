// Flight recorder: ring-buffer retention, query-id assignment, slow-query
// log thresholding and record formats.

#include "testbed/flight_recorder.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dkb::testbed {
namespace {

QueryLogEntry Entry(int64_t id, int64_t total_us) {
  QueryLogEntry e;
  e.query_id = id;
  e.query = "anc(a, X)";
  e.strategy = "semi-naive";
  e.executed = true;
  e.total_us = total_us;
  return e;
}

TEST(FlightRecorderTest, QueryIdsAreMonotonicFromOne) {
  FlightRecorder recorder;
  EXPECT_EQ(recorder.NextQueryId(), 1);
  EXPECT_EQ(recorder.NextQueryId(), 2);
  EXPECT_EQ(recorder.NextQueryId(), 3);
}

TEST(FlightRecorderTest, RingEvictsOldestBeyondCapacity) {
  FlightRecorder recorder(/*capacity=*/3);
  for (int64_t id = 1; id <= 5; ++id) recorder.Record(Entry(id, 10));
  std::vector<QueryLogEntry> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].query_id, 3);
  EXPECT_EQ(snapshot[1].query_id, 4);
  EXPECT_EQ(snapshot[2].query_id, 5);
  EXPECT_EQ(recorder.size(), 3u);
  EXPECT_EQ(recorder.capacity(), 3u);
}

TEST(FlightRecorderTest, ShrinkingCapacityDropsOldest) {
  FlightRecorder recorder(/*capacity=*/8);
  for (int64_t id = 1; id <= 6; ++id) recorder.Record(Entry(id, 10));
  recorder.SetCapacity(2);
  std::vector<QueryLogEntry> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].query_id, 5);
  EXPECT_EQ(snapshot[1].query_id, 6);
}

TEST(FlightRecorderTest, ZeroCapacityIsClampedToOne) {
  FlightRecorder recorder(/*capacity=*/0);
  recorder.Record(Entry(1, 10));
  recorder.Record(Entry(2, 10));
  EXPECT_EQ(recorder.capacity(), 1u);
  ASSERT_EQ(recorder.Snapshot().size(), 1u);
  EXPECT_EQ(recorder.Snapshot()[0].query_id, 2);
}

TEST(FlightRecorderTest, SlowLogEmitsExactlyOneRecordPastThreshold) {
  FlightRecorder recorder;
  std::vector<std::string> records;
  SlowQueryLogOptions slow;
  slow.threshold_us = 100;
  slow.sink = [&records](const std::string& r) { records.push_back(r); };
  recorder.SetSlowQueryLog(slow);

  recorder.Record(Entry(1, 100));  // at threshold: not slow
  EXPECT_TRUE(records.empty());
  recorder.Record(Entry(2, 101));  // past threshold: one record
  ASSERT_EQ(records.size(), 1u);
  EXPECT_NE(records[0].find("id=2"), std::string::npos) << records[0];
  EXPECT_NE(records[0].find("total_us=101"), std::string::npos);
  EXPECT_NE(records[0].find("query=\"anc(a, X)\""), std::string::npos);
  recorder.Record(Entry(3, 50));  // under threshold again
  EXPECT_EQ(records.size(), 1u);
}

TEST(FlightRecorderTest, SlowLogDisabledByDefault) {
  FlightRecorder recorder;
  std::vector<std::string> records;
  // Even a sink doesn't help: the default threshold (-1) disables the log.
  SlowQueryLogOptions slow = recorder.slow_query_log();
  EXPECT_LT(slow.threshold_us, 0);
  slow.sink = [&records](const std::string& r) { records.push_back(r); };
  recorder.SetSlowQueryLog(slow);
  recorder.Record(Entry(1, 1 << 30));
  EXPECT_TRUE(records.empty());
}

TEST(FlightRecorderTest, SlowRecordJsonFormat) {
  std::string record =
      FlightRecorder::FormatSlowRecord(Entry(7, 12345), /*json=*/true);
  EXPECT_EQ(record.front(), '{');
  EXPECT_EQ(record.back(), '}');
  EXPECT_NE(record.find("\"slow_query\": true"), std::string::npos);
  EXPECT_NE(record.find("\"query_id\": 7"), std::string::npos);
  EXPECT_NE(record.find("\"total_us\": 12345"), std::string::npos);
  EXPECT_NE(record.find("\"query\": \"anc(a, X)\""), std::string::npos);
  // One line: structured consumers read records newline-delimited.
  EXPECT_EQ(record.find('\n'), std::string::npos);
}

TEST(FlightRecorderTest, MakeEntryFlattensReportAndIterations) {
  QueryReport report;
  report.plan.query = "tc(a, X)";
  report.plan.strategy = "semi-naive";
  report.plan.magic_applied = true;
  report.from_cache = false;
  report.executed = true;
  report.total_us = 777;
  report.compile.t_setup_us = 5;
  report.exec.iterations = 3;
  lfp::NodeStats node;
  node.label = "tc";
  node.is_clique = true;
  node.delta_sizes = {4, 2, 0};
  report.exec.nodes.push_back(node);

  QueryLogEntry entry =
      FlightRecorder::MakeEntry(report, /*query_id=*/9, /*session_id=*/2,
                                /*rows_out=*/6);
  EXPECT_EQ(entry.query_id, 9);
  EXPECT_EQ(entry.session_id, 2);
  EXPECT_GT(entry.ts_us, 0);
  EXPECT_EQ(entry.query, "tc(a, X)");
  EXPECT_TRUE(entry.magic);
  EXPECT_TRUE(entry.executed);
  EXPECT_EQ(entry.rows_out, 6);
  EXPECT_EQ(entry.iterations, 3);
  EXPECT_EQ(entry.total_us, 777);
  // Phases in Table 4/5 order: nine compile phases then four execution.
  ASSERT_EQ(entry.phases.size(), 13u);
  EXPECT_EQ(entry.phases[0].name, "t_setup");
  EXPECT_EQ(entry.phases[0].micros, 5);
  EXPECT_EQ(entry.phases[12].name, "t_final");
  // One sub-record per iteration of the clique node.
  ASSERT_EQ(entry.lfp_iterations.size(), 3u);
  EXPECT_EQ(entry.lfp_iterations[0].node, "tc");
  EXPECT_TRUE(entry.lfp_iterations[0].is_clique);
  EXPECT_EQ(entry.lfp_iterations[0].iter, 1);
  EXPECT_EQ(entry.lfp_iterations[0].delta_rows, 4);
  EXPECT_EQ(entry.lfp_iterations[2].iter, 3);
  EXPECT_EQ(entry.lfp_iterations[2].delta_rows, 0);
  EXPECT_EQ(entry.trace, nullptr);
}

TEST(FlightRecorderTest, TracedEntrySharesTheReportContext) {
  QueryReport report;
  report.plan.query = "anc(a, X)";
  report.trace = std::make_shared<trace::TraceContext>("query:anc(a, X)");
  report.trace->root()->End();
  QueryLogEntry entry =
      FlightRecorder::MakeEntry(report, /*query_id=*/1, /*session_id=*/0,
                                /*rows_out=*/0);
  // No per-query deep copy: the entry references the settled context.
  EXPECT_EQ(entry.trace.get(), report.trace.get());
}

}  // namespace
}  // namespace dkb::testbed
