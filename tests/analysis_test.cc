#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "datalog/parser.h"
#include "km/analysis/analyzer.h"
#include "km/analysis/stratify.h"
#include "km/compiler.h"
#include "magic/magic_sets.h"
#include "testbed/testbed.h"

namespace dkb::km::analysis {
namespace {

std::vector<datalog::Rule> Rules(const std::string& text) {
  auto program = datalog::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return program->rules;
}

datalog::Atom Goal(const std::string& text) {
  auto atom = datalog::ParseQuery(text);
  EXPECT_TRUE(atom.ok());
  return *atom;
}

bool HasCode(const AnalysisResult& result, const std::string& code) {
  for (const Diagnostic& d : result.diagnostics()) {
    if (d.code == code) return true;
  }
  return false;
}

int CountCode(const AnalysisResult& result, const std::string& code) {
  int n = 0;
  for (const Diagnostic& d : result.diagnostics()) {
    if (d.code == code) ++n;
  }
  return n;
}

bool DefinesHead(const std::vector<datalog::Rule>& rules,
                 const std::string& pred) {
  return std::any_of(rules.begin(), rules.end(), [&](const datalog::Rule& r) {
    return r.head.predicate == pred;
  });
}

// --- Pass 1: duplicate elimination -----------------------------------------

TEST(AnalyzerTest, DuplicateRuleDroppedOnce) {
  AnalyzerInput input;
  input.rules = Rules(
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Y) :- edge(X, Z), path(Z, Y).\n"
      "path(X, Y) :- edge(X, Y).\n");
  input.base_predicates = {"edge"};
  AnalysisResult result = AnalyzeProgram(input);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.rules.size(), 2u);
  EXPECT_EQ(CountCode(result, kCodeDuplicateRule), 1);
  // The first copy survives.
  EXPECT_EQ(result.rules[0].span.line, 1);
}

// --- Pass 2: unsatisfiable bodies ------------------------------------------

TEST(AnalyzerTest, ContradictoryIntervalIsUnsatisfiable) {
  AnalyzerInput input;
  input.rules = Rules("big(X) :- num(X), X < 3, X > 5.\n");
  input.base_predicates = {"num"};
  AnalysisResult result = AnalyzeProgram(input);
  EXPECT_TRUE(result.rules.empty());
  EXPECT_EQ(CountCode(result, kCodeUnsatisfiableBody), 1);
}

TEST(AnalyzerTest, ConstantComparisonFolds) {
  AnalyzerInput input;
  input.rules = Rules(
      "never(X) :- num(X), 1 > 2.\n"
      "always(X) :- num(X), 1 < 2.\n");
  input.base_predicates = {"num"};
  AnalysisResult result = AnalyzeProgram(input);
  ASSERT_EQ(result.rules.size(), 1u);
  EXPECT_EQ(result.rules[0].head.predicate, "always");
  EXPECT_EQ(CountCode(result, kCodeUnsatisfiableBody), 1);
}

TEST(AnalyzerTest, SameVariableDisequalityIsUnsatisfiable) {
  AnalyzerInput input;
  input.rules = Rules("odd(X) :- num(X), X != X.\n");
  input.base_predicates = {"num"};
  AnalysisResult result = AnalyzeProgram(input);
  EXPECT_TRUE(result.rules.empty());
  EXPECT_TRUE(HasCode(result, kCodeUnsatisfiableBody));
}

TEST(AnalyzerTest, EqualityPropagatesThroughUnionFind) {
  // X = Y, Y = 3, X > 4 is contradictory even though no single variable
  // carries both constraints directly.
  AnalyzerInput input;
  input.rules = Rules("p(X) :- num(X), num(Y), X = Y, Y = 3, X > 4.\n");
  input.base_predicates = {"num"};
  AnalysisResult result = AnalyzeProgram(input);
  EXPECT_TRUE(result.rules.empty());
  EXPECT_TRUE(HasCode(result, kCodeUnsatisfiableBody));
}

TEST(AnalyzerTest, EmptyPredicateCascades) {
  // `mid` is provably empty, so `top`, which depends positively on it,
  // is unsatisfiable too.
  AnalyzerInput input;
  input.rules = Rules(
      "mid(X) :- num(X), X < 0, X > 0.\n"
      "top(X) :- mid(X), num(X).\n");
  input.base_predicates = {"num"};
  AnalysisResult result = AnalyzeProgram(input);
  EXPECT_TRUE(result.rules.empty());
  EXPECT_EQ(CountCode(result, kCodeUnsatisfiableBody), 2);
}

TEST(AnalyzerTest, NegatedEmptyPredicateDoesNotCascade) {
  AnalyzerInput input;
  input.rules = Rules(
      "mid(X) :- num(X), X < 0, X > 0.\n"
      "top(X) :- num(X), not mid(X).\n");
  input.base_predicates = {"num"};
  AnalysisResult result = AnalyzeProgram(input);
  // `not mid(X)` is vacuously true over an empty mid; top must survive.
  EXPECT_TRUE(DefinesHead(result.rules, "top"));
}

TEST(AnalyzerTest, SatisfiableComparisonsKept) {
  AnalyzerInput input;
  input.rules = Rules(
      "cheap(P, S) :- part(P, S), price(S, C), C <= 100, C >= 0.\n");
  input.base_predicates = {"part", "price"};
  AnalysisResult result = AnalyzeProgram(input);
  EXPECT_TRUE(result.diagnostics().empty());
  EXPECT_EQ(result.rules.size(), 1u);
}

// --- Pass 3: definedness -----------------------------------------------------

TEST(AnalyzerTest, UndefinedPredicateIsError) {
  AnalyzerInput input;
  input.rules = Rules("foo(X) :- ghost(X).\n");
  AnalysisResult result = AnalyzeProgram(input);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasCode(result, kCodeUndefinedPredicate));
  EXPECT_NE(result.engine.FirstError().find("ghost"), std::string::npos);
}

// --- Pass 4: stratification --------------------------------------------------

TEST(StratifyTest, NegationInsideCliqueIsViolation) {
  std::vector<datalog::Rule> rules =
      Rules("win(X) :- edge(X, Y), not win(Y).\n");
  Stratification strata = ComputeStratification(rules);
  EXPECT_FALSE(strata.stratified());
  ASSERT_EQ(strata.violations.size(), 1u);
  EXPECT_EQ(strata.violations[0].negated, "win");
  Status status = CheckStratified(rules);
  EXPECT_EQ(status.code(), StatusCode::kSemanticError);
  EXPECT_NE(status.message().find("stratified"), std::string::npos);
}

TEST(StratifyTest, StratifiedNegationGetsHigherStratum) {
  std::vector<datalog::Rule> rules = Rules(
      "connected(X, Y) :- flight(X, Y).\n"
      "connected(X, Y) :- flight(X, Z), connected(Z, Y).\n"
      "cutoff(X, Y) :- city(X), city(Y), not connected(X, Y).\n");
  Stratification strata = ComputeStratification(rules);
  EXPECT_TRUE(strata.stratified());
  EXPECT_TRUE(CheckStratified(rules).ok());
  EXPECT_GT(strata.stratum.at("cutoff"), strata.stratum.at("connected"));
}

TEST(AnalyzerTest, UnstratifiedProgramReportsError) {
  AnalyzerInput input;
  input.rules = Rules("win(X) :- edge(X, Y), not win(Y).\n");
  input.base_predicates = {"edge"};
  AnalysisResult result = AnalyzeProgram(input);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasCode(result, kCodeUnstratified));
}

// --- Pass 5: dead rules ------------------------------------------------------

TEST(AnalyzerTest, DeadRuleEliminatedUnderGoal) {
  AnalyzerInput input;
  input.rules = Rules(
      "ancestor(X, Y) :- parent(X, Y).\n"
      "orphan(X) :- island(X).\n");
  input.base_predicates = {"parent", "island"};
  datalog::Atom goal = Goal("?- ancestor(a, W).");
  input.goal = &goal;
  AnalysisResult result = AnalyzeProgram(input);
  EXPECT_EQ(CountCode(result, kCodeDeadRule), 1);
  EXPECT_EQ(result.rules.size(), 1u);
  EXPECT_EQ(result.rules[0].head.predicate, "ancestor");
}

TEST(AnalyzerTest, RulesReachableThroughNegationAreLive) {
  AnalyzerInput input;
  input.rules = Rules(
      "safe(X) :- node(X), not bad(X).\n"
      "bad(X) :- virus(X).\n");
  input.base_predicates = {"node", "virus"};
  datalog::Atom goal = Goal("?- safe(W).");
  input.goal = &goal;
  AnalysisResult result = AnalyzeProgram(input);
  EXPECT_EQ(CountCode(result, kCodeDeadRule), 0);
  EXPECT_EQ(result.rules.size(), 2u);
}

// --- Pass 6: adornment dataflow ---------------------------------------------

TEST(AnalyzerTest, AdornmentDataflowMatchesSip) {
  AnalyzerInput input;
  input.rules = Rules(
      "ancestor(X, Y) :- parent(X, Y).\n"
      "ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).\n");
  input.base_predicates = {"parent"};
  datalog::Atom goal = Goal("?- ancestor(a, W).");
  input.goal = &goal;
  AnalysisResult result = AnalyzeProgram(input);
  // Left-to-right SIP: the bound goal yields ancestor^bf; the recursive
  // call sees Z bound through parent, so bf is the only adornment.
  EXPECT_EQ(result.adornments,
            (std::set<std::pair<std::string, std::string>>{
                {"ancestor", "bf"}}));
  EXPECT_FALSE(HasCode(result, kCodeInconsistentAdornment));
}

TEST(AnalyzerTest, AllFreeReachableWarnsInconsistentAdornment) {
  AnalyzerInput input;
  input.rules = Rules(
      "needs_helper(X) :- helper(Y), pair(X, Y).\n"
      "helper(Y) :- item(Y).\n");
  input.base_predicates = {"item", "pair"};
  datalog::Atom goal = Goal("?- needs_helper(b).");
  input.goal = &goal;
  AnalysisResult result = AnalyzeProgram(input);
  EXPECT_EQ(CountCode(result, kCodeInconsistentAdornment), 1);
  EXPECT_TRUE(result.adornments.count({"helper", "f"}) > 0);
}

// Regression: a goal whose arity disagrees with the rule head must not be
// walked by the adornment dataflow (the type checker owns that error).
TEST(AnalyzerTest, GoalArityMismatchDoesNotCrashAdornmentDataflow) {
  AnalyzerInput input;
  input.rules = Rules(
      "ancestor(X, Y) :- parent(X, Y).\n"
      "ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).\n");
  input.base_predicates = {"parent"};
  datalog::Atom goal = Goal("?- ancestor(adam, W, Extra).");
  input.goal = &goal;
  AnalysisResult result = AnalyzeProgram(input);
  // The mismatched caller reaches no rule; only the goal's own adornment
  // is recorded.
  EXPECT_EQ(result.adornments.size(), 1u);
}

// --- Pass 7: cardinality -----------------------------------------------------

TEST(AnalyzerTest, CardinalityUsesBaseCountsAndEstimatesDerived) {
  AnalyzerInput input;
  input.rules = Rules("pair(X, Y) :- left(X), right(Y).\n");
  input.base_predicates = {"left", "right"};
  input.base_cardinalities = {{"left", 10}, {"right", 7}};
  AnalysisResult result = AnalyzeProgram(input);
  EXPECT_EQ(result.cardinality.at("left").base_tuples, 10);
  EXPECT_TRUE(result.cardinality.at("left").is_base);
  const PredicateCardinality& pair = result.cardinality.at("pair");
  EXPECT_FALSE(pair.is_base);
  EXPECT_EQ(pair.num_rules, 1);
  EXPECT_GE(pair.est_tuples, 70.0);  // product of the two base sizes
}

// --- goal_provably_empty -----------------------------------------------------

TEST(AnalyzerTest, GoalProvablyEmptyWhenAllDefinitionsPruned) {
  AnalyzerInput input;
  input.rules = Rules("never(X) :- num(X), X < 0, X > 0.\n");
  input.base_predicates = {"num"};
  datalog::Atom goal = Goal("?- never(W).");
  input.goal = &goal;
  AnalysisResult result = AnalyzeProgram(input);
  EXPECT_TRUE(result.goal_provably_empty);
  EXPECT_TRUE(result.rules.empty());
}

// --- Magic-sets interaction --------------------------------------------------

// The analyzer's achievable-adornment set must be a superset of what the
// rewrite generates: filtering with it must not change the output at all.
TEST(AnalyzerTest, AdornmentFilterIsExactForOwnRules) {
  for (const char* program_text :
       {"ancestor(X, Y) :- parent(X, Y).\n"
        "ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).\n",
        "sg(X, Y) :- flat(X, Y).\n"
        "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n"}) {
    std::vector<datalog::Rule> rules = Rules(program_text);
    AnalyzerInput input;
    input.rules = rules;
    input.base_predicates = {"parent", "flat", "up", "down"};
    datalog::Atom goal =
        Goal(rules[0].head.predicate == "sg" ? "?- sg(a, W)."
                                             : "?- ancestor(a, W).");
    input.goal = &goal;
    AnalysisResult analyzed = AnalyzeProgram(input);
    std::set<std::string> derived = {rules[0].head.predicate};

    auto unfiltered =
        magic::ApplyGeneralizedMagicSets(rules, goal, derived);
    ASSERT_TRUE(unfiltered.ok());
    magic::AdornmentFilter filter;
    filter.allowed = analyzed.adornments;
    auto filtered = magic::ApplyGeneralizedMagicSets(
        rules, goal, derived, magic::MagicVariant::kGeneralized, &filter);
    ASSERT_TRUE(filtered.ok());
    EXPECT_EQ(unfiltered->rules, filtered->rules) << program_text;
    EXPECT_EQ(unfiltered->adorned_query, filtered->adorned_query);
  }
}

// Regression: pruning an unsatisfiable rule removes the only path to a
// predicate, and the magic output must shrink accordingly — no adorned or
// magic rules for the unreachable predicate.
TEST(AnalyzerTest, MagicOutputShrinksWhenDeadAdornmentsArePruned) {
  std::vector<datalog::Rule> rules = Rules(
      "reach(X, Y) :- edge(X, Y).\n"
      "reach(X, Y) :- detour(X, Y), 1 > 2.\n"
      "detour(X, Y) :- edge(X, Z), reach(Z, Y).\n");
  datalog::Atom goal = Goal("?- reach(a, W).");
  std::set<std::string> derived = {"reach", "detour"};

  auto unpruned = magic::ApplyGeneralizedMagicSets(rules, goal, derived);
  ASSERT_TRUE(unpruned.ok());
  EXPECT_GT(unpruned->adorned_predicates.count("detour__bf"), 0u);

  AnalyzerInput input;
  input.rules = rules;
  input.base_predicates = {"edge"};
  input.goal = &goal;
  AnalysisResult analyzed = AnalyzeProgram(input);
  EXPECT_TRUE(HasCode(analyzed, kCodeUnsatisfiableBody));
  EXPECT_TRUE(HasCode(analyzed, kCodeDeadRule));  // detour is now dead
  ASSERT_EQ(analyzed.rules.size(), 1u);

  magic::AdornmentFilter filter;
  filter.allowed = analyzed.adornments;
  auto pruned = magic::ApplyGeneralizedMagicSets(
      analyzed.rules, goal, {"reach"}, magic::MagicVariant::kGeneralized,
      &filter);
  ASSERT_TRUE(pruned.ok());
  EXPECT_LT(pruned->rules.size(), unpruned->rules.size());
  EXPECT_TRUE(pruned->adorned_predicates.count("detour__bf") == 0u);
  for (const datalog::Rule& rule : pruned->rules) {
    EXPECT_EQ(rule.head.predicate.find("detour"), std::string::npos)
        << rule.ToString();
    for (const datalog::Atom& atom : rule.body) {
      EXPECT_EQ(atom.predicate.find("detour"), std::string::npos)
          << rule.ToString();
    }
  }
}

// --- Compiler integration ----------------------------------------------------

class AnalysisCompilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto tb = testbed::Testbed::Create();
    ASSERT_TRUE(tb.ok());
    tb_ = std::move(*tb);
  }

  Result<CompiledQuery> Compile(const std::string& goal,
                                bool magic = false) {
    testbed::QueryOptions opts = magic ? testbed::QueryOptions::Magic()
                                       : testbed::QueryOptions::SemiNaive();
    return tb_->CompileOnly(Goal(goal), opts, &stats_);
  }

  std::unique_ptr<testbed::Testbed> tb_;
  CompilationStats stats_;
};

// Acceptance check: an unsatisfiable rule is still *relevant* (the PCG
// reaches it) but must never make it into the generated program.
TEST_F(AnalysisCompilerTest, UnsatisfiableRuleNeverReachesCodegen) {
  ASSERT_TRUE(tb_->Consult("ancestor(X, Y) :- parent(X, Y).\n"
                           "ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).\n"
                           "ancestor(X, Y) :- parent(X, Y), 1 > 2.\n"
                           "parent(a, b).\nparent(b, c).\n")
                  .ok());
  auto compiled = Compile("?- ancestor(a, W).");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  // Relevance extraction keeps it...
  EXPECT_EQ(stats_.rules_relevant, 3);
  // ...the analyzer prunes it...
  EXPECT_EQ(stats_.rules_pruned, 1);
  bool w004 = false;
  for (const Diagnostic& d : compiled->analysis.diagnostics()) {
    if (d.code == kCodeUnsatisfiableBody) w004 = true;
  }
  EXPECT_TRUE(w004);
  // ...and no compiled node evaluates it.
  auto has_const_const_builtin = [](const datalog::Rule& rule) {
    for (const datalog::Atom& atom : rule.body) {
      if (atom.is_builtin() && atom.args.size() == 2 &&
          atom.args[0].is_constant() && atom.args[1].is_constant()) {
        return true;
      }
    }
    return false;
  };
  for (const auto& node : compiled->program.nodes) {
    for (const CompiledRule& compiled_rule : node.exit_rules) {
      EXPECT_FALSE(has_const_const_builtin(compiled_rule.rule))
          << compiled_rule.rule.ToString();
    }
    for (const datalog::Rule& rule : node.recursive_rules) {
      EXPECT_FALSE(has_const_const_builtin(rule)) << rule.ToString();
    }
  }
  // Semantics unchanged: the query still answers through the live rules.
  auto outcome = tb_->Query("?- ancestor(a, W).");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->result.rows.size(), 2u);  // b, c
}

TEST_F(AnalysisCompilerTest, CleanProgramCompilesWithoutDiagnostics) {
  // The analyzer must not second-guess a valid program: no diagnostics, no
  // pruning, and the analysis byproducts (strata, cardinality) are filled
  // in for downstream consumers.
  ASSERT_TRUE(tb_->Consult("tc(X, Y) :- edge(X, Y).\n"
                           "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n"
                           "edge(a, b).\nedge(b, c).\n")
                  .ok());
  auto compiled = Compile("?- tc(a, W).");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ(stats_.rules_pruned, 0);
  EXPECT_TRUE(compiled->analysis.diagnostics().empty());
  EXPECT_EQ(compiled->analysis.strata.stratum.count("tc"), 1u);
  const PredicateCardinality& edge = compiled->analysis.cardinality.at("edge");
  EXPECT_TRUE(edge.is_base);
  EXPECT_EQ(edge.base_tuples, 2);
  EXPECT_GE(compiled->analysis.cardinality.at("tc").est_tuples, 2.0);
}

TEST_F(AnalysisCompilerTest, ProvablyEmptyGoalStillCompiles) {
  // When every definition of the goal is pruned the compiler falls back to
  // the unpruned rule set: the query must keep compiling and return no rows
  // rather than erroring out.
  ASSERT_TRUE(tb_->Consult("never(X) :- num(X), X < 0, X > 0.\n"
                           "num(1).\n")
                  .ok());
  auto outcome = tb_->Query("?- never(W).");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->result.rows.empty());
}

TEST_F(AnalysisCompilerTest, MagicPathAlsoPrunes) {
  ASSERT_TRUE(tb_->Consult("ancestor(X, Y) :- parent(X, Y).\n"
                           "ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).\n"
                           "ancestor(X, Y) :- parent(X, Y), 2 < 1.\n"
                           "parent(a, b).\nparent(b, c).\n")
                  .ok());
  auto compiled = Compile("?- ancestor(a, W).", /*magic=*/true);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_TRUE(stats_.magic_applied);
  EXPECT_EQ(stats_.rules_pruned, 1);
  testbed::QueryOptions opts = testbed::QueryOptions::Magic();
  auto outcome = tb_->Query(Goal("?- ancestor(a, W)."), opts);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->result.rows.size(), 2u);
}

TEST_F(AnalysisCompilerTest, AnalyzerCanBeDisabled) {
  ASSERT_TRUE(tb_->Consult("p(X) :- q(X), 1 > 2.\nq(1).\n").ok());
  QueryCompiler compiler(&tb_->workspace(), &tb_->stored());
  CompilerOptions copts;
  copts.analyze = false;
  CompilationStats stats;
  auto compiled = compiler.Compile(Goal("?- p(W)."), copts, &stats);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ(stats.rules_pruned, 0);
  EXPECT_TRUE(compiled->analysis.diagnostics().empty());
}

TEST_F(AnalysisCompilerTest, LintWorkspaceReportsWorkspaceProblems) {
  ASSERT_TRUE(tb_->Consult("num(1).\n").ok());
  ASSERT_TRUE(tb_->AddRule("p(X) :- num(X), X < 0, X > 0.").ok());
  ASSERT_TRUE(tb_->AddRule("q(X) :- num(X).").ok());
  auto diags = tb_->LintWorkspace();
  ASSERT_TRUE(diags.ok()) << diags.status().ToString();
  bool w004 = false;
  for (const Diagnostic& d : *diags) {
    if (d.code == kCodeUnsatisfiableBody) w004 = true;
  }
  EXPECT_TRUE(w004);
}

}  // namespace
}  // namespace dkb::km::analysis
