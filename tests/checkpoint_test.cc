#include "storage/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "testbed/testbed.h"
#include "workload/data_gen.h"
#include "workload/queries.h"

namespace dkb::testbed {
namespace {

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::set<std::string> AnswerSet(const QueryResult& result) {
  std::set<std::string> out;
  for (const Tuple& row : result.rows) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    out.insert(key);
  }
  return out;
}

/// Builds a testbed holding rules, bulk-loaded facts, and committed stored
/// rules — every kind of state a checkpoint must carry.
std::unique_ptr<Testbed> MakePopulatedTestbed(size_t shards) {
  auto tb = Testbed::Create(TestbedOptions{}.WithShards(shards));
  EXPECT_TRUE(tb.ok()) << tb.status().ToString();
  workload::EdgeSet edges = workload::MakeFullBinaryTrees(1, 5);
  Status s = (*tb)->Consult(workload::AncestorRules());
  EXPECT_TRUE(s.ok()) << s.ToString();
  s = (*tb)->DefineBase("parent", {DataType::kVarchar, DataType::kVarchar});
  EXPECT_TRUE(s.ok()) << s.ToString();
  s = (*tb)->AddFacts("parent", edges.ToTuples());
  EXPECT_TRUE(s.ok()) << s.ToString();
  auto stats = (*tb)->UpdateStoredDkb();
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return std::move(*tb);
}

class CheckpointRoundTrip : public ::testing::TestWithParam<size_t> {};

TEST_P(CheckpointRoundTrip, SaveLoadPreservesAnswers) {
  const size_t shards = GetParam();
  auto tb = MakePopulatedTestbed(shards);
  const std::string root = workload::TreeNodeName(0, 0);
  auto before = tb->Query("ancestor('" + root + "', W)");
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  ASSERT_EQ(before->result.rows.size(), 30u);  // depth-5 tree minus the root

  std::string path =
      TempPath("ckpt_rt_" + std::to_string(shards) + ".ckpt");
  ASSERT_TRUE(tb->SaveSession(path).ok());

  auto loaded =
      Testbed::LoadSession(path, TestbedOptions{}.WithShards(shards));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto after = (*loaded)->Query("ancestor('" + root + "', W)");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(AnswerSet(before->result), AnswerSet(after->result));

  // Workspace rules survived too.
  EXPECT_EQ(tb->ListRuleTexts(), (*loaded)->ListRuleTexts());

  // Writes keep working after a restore (the loaded testbed is live, not a
  // read-only image).
  std::string leaf = workload::TreeNodeName(0, 30);
  ASSERT_TRUE(
      (*loaded)->AddFacts("parent", {{Value(leaf), Value("extra")}}).ok());
  auto grown = (*loaded)->Query("ancestor('" + root + "', W)");
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ(grown->result.rows.size(), 31u);
}

INSTANTIATE_TEST_SUITE_P(Shards, CheckpointRoundTrip,
                         ::testing::Values(1, 2, 8));

TEST(CheckpointTest, ImagesOfIdenticalStatesAreByteIdentical) {
  auto a = MakePopulatedTestbed(2);
  auto b = MakePopulatedTestbed(2);
  std::string pa = TempPath("ckpt_ident_a.ckpt");
  std::string pb = TempPath("ckpt_ident_b.ckpt");
  ASSERT_TRUE(a->SaveSession(pa).ok());
  ASSERT_TRUE(b->SaveSession(pb).ok());
  std::ifstream fa(pa, std::ios::binary), fb(pb, std::ios::binary);
  std::string ba((std::istreambuf_iterator<char>(fa)),
                 std::istreambuf_iterator<char>());
  std::string bb((std::istreambuf_iterator<char>(fb)),
                 std::istreambuf_iterator<char>());
  ASSERT_FALSE(ba.empty());
  EXPECT_EQ(ba, bb);
}

TEST(CheckpointTest, PeekReadsHeaderWithoutLoading) {
  auto tb = MakePopulatedTestbed(1);
  std::string path = TempPath("ckpt_peek.ckpt");
  ASSERT_TRUE(tb->SaveSession(path).ok());
  auto info = PeekCheckpoint(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->epoch, tb->epoch());
  EXPECT_EQ(info->last_lsn, 0u);  // no WAL configured on this testbed
}

TEST(CheckpointTest, LoadIntoNonEmptyTestbedIsFailedPrecondition) {
  auto source = MakePopulatedTestbed(1);
  std::string path = TempPath("ckpt_nonempty.ckpt");
  ASSERT_TRUE(source->SaveSession(path).ok());

  // A freshly created testbed is NOT an empty load target: Create already
  // initialized the stored-DKB relations.
  auto target = Testbed::Create();
  ASSERT_TRUE(target.ok());
  Status s = (*target)->LoadCheckpoint(path);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kFailedPrecondition) << s.ToString();
}

TEST(CheckpointTest, FailedPreconditionWireValueIsPinned) {
  // kFailedPrecondition is on the wire (u16 in Error frames) and in the WAL
  // recovery contract; its value is format-stable.
  EXPECT_EQ(static_cast<uint16_t>(ErrorCode::kFailedPrecondition), 10);
  EXPECT_EQ(ErrorCodeFromWire(10), ErrorCode::kFailedPrecondition);
}

TEST(CheckpointTest, CheckpointWithoutWalDirIsFailedPrecondition) {
  auto tb = Testbed::Create();
  ASSERT_TRUE(tb.ok());
  Status s = (*tb)->Checkpoint();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kFailedPrecondition) << s.ToString();
}

TEST(CheckpointTest, CorruptFileIsRejected) {
  auto tb = MakePopulatedTestbed(1);
  std::string path = TempPath("ckpt_corrupt.ckpt");
  ASSERT_TRUE(tb->SaveSession(path).ok());
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(32);  // well past the magic, inside the payload
    char c = 0x7f;
    f.write(&c, 1);
  }
  auto info = PeekCheckpoint(path);
  EXPECT_FALSE(info.ok());
}

}  // namespace
}  // namespace dkb::testbed
