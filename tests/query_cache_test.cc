// Direct unit tests of the precompiled-query store (conclusion #3).

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "testbed/query_cache.h"

namespace dkb::testbed {
namespace {

datalog::Atom Goal(const std::string& text) {
  auto atom = datalog::ParseQuery(text);
  EXPECT_TRUE(atom.ok());
  return *atom;
}

km::CompiledQuery MakeCompiled(const std::string& marker) {
  km::CompiledQuery compiled;
  compiled.original_query.predicate = marker;
  return compiled;
}

TEST(QueryCacheTest, KeyEncodesGoalAndOptions) {
  datalog::Atom goal = Goal("anc(a, W)");
  EXPECT_NE(QueryCache::MakeKey(goal, false), QueryCache::MakeKey(goal, true));
  EXPECT_NE(QueryCache::MakeKey(goal, false),
            QueryCache::MakeKey(goal, false, /*adaptive_magic=*/true));
  EXPECT_NE(QueryCache::MakeKey(Goal("anc(a, W)"), false),
            QueryCache::MakeKey(Goal("anc(b, W)"), false));
  EXPECT_EQ(QueryCache::MakeKey(goal, false),
            QueryCache::MakeKey(Goal("anc(a, W)"), false));
}

TEST(QueryCacheTest, LookupMissThenHit) {
  QueryCache cache;
  EXPECT_EQ(cache.Lookup("k"), nullptr);
  cache.Insert("k", MakeCompiled("p"), {"p", "e"});
  auto hit = cache.Lookup("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->original_query.predicate, "p");
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(QueryCacheTest, InvalidateByDependency) {
  QueryCache cache;
  cache.Insert("k1", MakeCompiled("p"), {"p", "e"});
  cache.Insert("k2", MakeCompiled("q"), {"q", "e"});
  cache.Insert("k3", MakeCompiled("r"), {"r", "f"});
  cache.InvalidateOn({"e"});
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().invalidated, 2);
  EXPECT_EQ(cache.Lookup("k1"), nullptr);
  EXPECT_NE(cache.Lookup("k3"), nullptr);
}

TEST(QueryCacheTest, InvalidateOnUnrelatedPredicateKeepsAll) {
  QueryCache cache;
  cache.Insert("k1", MakeCompiled("p"), {"p"});
  cache.InvalidateOn({"zzz"});
  EXPECT_EQ(cache.size(), 1u);
  cache.InvalidateOn({});
  EXPECT_EQ(cache.size(), 1u);
}

TEST(QueryCacheTest, InsertOverwritesSameKey) {
  QueryCache cache;
  cache.Insert("k", MakeCompiled("old"), {"a"});
  cache.Insert("k", MakeCompiled("new"), {"b"});
  EXPECT_EQ(cache.size(), 1u);
  auto hit = cache.Lookup("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->original_query.predicate, "new");
  // Dependencies were replaced too: invalidating on the old set is a no-op.
  cache.InvalidateOn({"a"});
  EXPECT_EQ(cache.size(), 1u);
  cache.InvalidateOn({"b"});
  EXPECT_EQ(cache.size(), 0u);
}

TEST(QueryCacheTest, ClearResetsEntriesNotStats) {
  QueryCache cache;
  cache.Insert("k", MakeCompiled("p"), {"p"});
  ASSERT_NE(cache.Lookup("k"), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup("k"), nullptr);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
}

}  // namespace
}  // namespace dkb::testbed
