// Transport oracle: the same workload, run through InProcessClient and
// through RemoteClient against a dkb_server, must produce byte-identical
// result sets. This is the contract that lets every tool take --connect
// without changing behaviour.
//
// The remote side is a fresh in-process Server by default; CI points the
// test at an externally started dkb_server via DKB_ORACLE_CONNECT so the
// real binary (process boundary included) is what gets pinned.

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "client/client.h"
#include "common/trace.h"
#include "client/in_process_client.h"
#include "client/remote_client.h"
#include "datalog/ast.h"
#include "datalog/parser.h"
#include "gtest/gtest.h"
#include "net/server.h"
#include "net/wire.h"
#include "testbed/testbed.h"

#ifndef DKB_EXAMPLES_DIR
#error "DKB_EXAMPLES_DIR must point at examples/programs"
#endif

namespace dkb {
namespace {

// The whole shipped example suite. Predicate-disjoint, so consulting them
// cumulatively into one session is safe (and exercises a growing rule base).
const char* const kPrograms[] = {
    "ancestor.dkb",
    "same_generation.dkb",
    "bill_of_materials.dkb",
    "flight_routes.dkb",
};

/// The option matrix each goal runs under: the paper's strategy axes plus
/// the cache and parallel-LFP extensions.
std::vector<std::pair<std::string, testbed::QueryOptions>> OptionMatrix() {
  using testbed::QueryOptions;
  return {
      {"seminaive", QueryOptions::SemiNaive()},
      {"naive", QueryOptions::Naive()},
      {"magic", QueryOptions::Magic()},
      {"supplementary", QueryOptions::SupplementaryMagic()},
      {"cached", QueryOptions::SemiNaive().WithCache()},
      {"parallel4", QueryOptions::SemiNaive().WithParallelism(4)},
  };
}

/// Canonical byte encoding of everything the transport must preserve:
/// schema, rows, and rows_affected. Timings and cache provenance are
/// legitimately run-dependent and excluded.
std::string CanonicalBytes(const QueryResultSet& rs) {
  net::WireWriter w;
  w.Cols(rs.schema);
  w.U32(static_cast<uint32_t>(rs.rows.size()));
  for (const Tuple& row : rs.rows) w.Row(row);
  w.I64(rs.rows_affected);
  return w.Take();
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class ClientOracleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto local = InProcessClient::Create();
    ASSERT_TRUE(local.ok()) << local.status().ToString();
    local_ = std::move(*local);

    const char* env = std::getenv("DKB_ORACLE_CONNECT");
    std::string target;
    if (env != nullptr && env[0] != '\0') {
      target = env;
    } else {
      auto tb = testbed::Testbed::Create();
      ASSERT_TRUE(tb.ok());
      server_tb_ = std::move(*tb);
      ASSERT_TRUE(server_.Start(server_tb_.get()).ok());
      target = "127.0.0.1:" + std::to_string(server_.port());
    }
    auto remote = RemoteClient::Connect(target);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    remote_ = std::move(*remote);
  }

  void TearDown() override {
    remote_.reset();  // close the connection before stopping the server
    if (server_tb_ != nullptr) server_.Stop();
  }

  /// Consults `text` into both sides, which must agree on acceptance.
  void ConsultBoth(const std::string& text, const std::string& what) {
    Status a = local_->Consult(text);
    Status b = remote_->Consult(text);
    ASSERT_TRUE(a.ok()) << what << " (in-process): " << a.ToString();
    ASSERT_TRUE(b.ok()) << what << " (remote): " << b.ToString();
  }

  std::unique_ptr<InProcessClient> local_;
  std::unique_ptr<RemoteClient> remote_;
  std::unique_ptr<testbed::Testbed> server_tb_;  // null with external server
  net::Server server_;
};

TEST_F(ClientOracleTest, ExampleSuiteIsByteIdenticalAcrossTransports) {
  std::vector<datalog::Atom> goals;
  for (const char* name : kPrograms) {
    std::string text =
        ReadFileOrDie(std::string(DKB_EXAMPLES_DIR) + "/" + name);
    auto program = datalog::ParseProgram(text);
    ASSERT_TRUE(program.ok()) << name << ": " << program.status().ToString();
    // Consult() rejects embedded queries; re-render rules and facts, and
    // collect the queries as oracle goals.
    std::string consult_text;
    for (const datalog::Rule& rule : program->rules) {
      consult_text += rule.ToString() + "\n";
    }
    for (const datalog::Rule& fact : program->facts) {
      consult_text += fact.ToString() + "\n";
    }
    ConsultBoth(consult_text, name);
    for (const datalog::Atom& q : program->queries) goals.push_back(q);
  }
  ASSERT_EQ(goals.size(), 4u);

  int compared = 0;
  for (const auto& [label, options] : OptionMatrix()) {
    for (const datalog::Atom& goal : goals) {
      SCOPED_TRACE(label + " / " + goal.ToString());
      auto a = local_->Query(goal.ToString(), options, net::kReportNone);
      auto b = remote_->Query(goal.ToString(), options, net::kReportNone);
      ASSERT_TRUE(a.ok()) << "in-process: " << a.status().ToString();
      ASSERT_TRUE(b.ok()) << "remote: " << b.status().ToString();
      EXPECT_GT(a->rows.size(), 0u);  // every example goal has answers
      EXPECT_EQ(CanonicalBytes(*a), CanonicalBytes(*b));
      ++compared;
    }
  }
  EXPECT_EQ(compared, 24);
}

TEST_F(ClientOracleTest, BatchAndPreparedAgreeWithSequentialQueries) {
  std::string text =
      ReadFileOrDie(std::string(DKB_EXAMPLES_DIR) + "/ancestor.dkb");
  auto program = datalog::ParseProgram(text);
  ASSERT_TRUE(program.ok());
  std::string consult_text;
  for (const datalog::Rule& rule : program->rules) {
    consult_text += rule.ToString() + "\n";
  }
  for (const datalog::Rule& fact : program->facts) {
    consult_text += fact.ToString() + "\n";
  }
  ConsultBoth(consult_text, "ancestor.dkb");

  const std::vector<std::string> goals = {"ancestor(adam, W)",
                                          "ancestor(seth, W)"};
  auto local_batch = local_->QueryBatch(goals, {}, net::kReportNone);
  auto remote_batch = remote_->QueryBatch(goals, {}, net::kReportNone);
  ASSERT_TRUE(local_batch.ok() && remote_batch.ok());
  ASSERT_EQ(local_batch->size(), 2u);
  ASSERT_EQ(remote_batch->size(), 2u);
  for (size_t i = 0; i < goals.size(); ++i) {
    SCOPED_TRACE(goals[i]);
    EXPECT_EQ(CanonicalBytes((*local_batch)[i]),
              CanonicalBytes((*remote_batch)[i]));
    // Batch answers equal one-at-a-time answers on both transports.
    auto single = remote_->Query(goals[i], {}, net::kReportNone);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(CanonicalBytes(*single), CanonicalBytes((*remote_batch)[i]));
  }

  // Prepared statements: same goals, handle-based execution.
  auto local_stmt = local_->Prepare(goals[0], {});
  auto remote_stmt = remote_->Prepare(goals[0], {});
  ASSERT_TRUE(local_stmt.ok() && remote_stmt.ok());
  auto local_exec = local_->Execute({*local_stmt});
  auto remote_exec = remote_->Execute({*remote_stmt});
  ASSERT_TRUE(local_exec.ok() && remote_exec.ok());
  ASSERT_EQ(local_exec->size(), 1u);
  ASSERT_EQ(remote_exec->size(), 1u);
  EXPECT_EQ(CanonicalBytes((*local_exec)[0]),
            CanonicalBytes((*remote_exec)[0]));
}

/// Ordered structural skeleton of a span tree: names and nesting, no
/// offsets/tids/tag values (legitimately run-dependent).
std::string TreeSkeleton(const trace::SpanNode& node, int depth = 0) {
  std::string out(static_cast<size_t>(depth) * 2, ' ');
  out += node.name + "\n";
  for (const trace::SpanNode& child : node.children) {
    out += TreeSkeleton(child, depth + 1);
  }
  return out;
}

/// Order-insensitive skeleton for trees built by pool threads, where
/// sibling attach order is scheduling-dependent.
std::string CanonicalSkeleton(const trace::SpanNode& node) {
  std::vector<std::string> kids;
  for (const trace::SpanNode& child : node.children) {
    kids.push_back(CanonicalSkeleton(child));
  }
  std::sort(kids.begin(), kids.end());
  std::string out = node.name + "(";
  for (const std::string& k : kids) out += k + ",";
  out += ")";
  return out;
}

/// The engine's root span beneath the server's net.* wrapper; an
/// in-process tree IS the engine root.
const trace::SpanNode* FindEngineRoot(const trace::SpanNode& node) {
  if (node.name.rfind("query:", 0) == 0) return &node;
  for (const trace::SpanNode& child : node.children) {
    if (const trace::SpanNode* found = FindEngineRoot(child)) return found;
  }
  return nullptr;
}

TEST_F(ClientOracleTest, TraceTreesMatchStructurallyAcrossTransports) {
  std::string text =
      ReadFileOrDie(std::string(DKB_EXAMPLES_DIR) + "/ancestor.dkb");
  auto program = datalog::ParseProgram(text);
  ASSERT_TRUE(program.ok());
  std::string consult_text;
  for (const datalog::Rule& rule : program->rules) {
    consult_text += rule.ToString() + "\n";
  }
  for (const datalog::Rule& fact : program->facts) {
    consult_text += fact.ToString() + "\n";
  }
  ConsultBoth(consult_text, "ancestor.dkb");

  for (const auto& [label, options] : OptionMatrix()) {
    SCOPED_TRACE(label);
    testbed::QueryOptions traced = options;
    traced.collect_trace = true;
    auto a = local_->Query("ancestor(adam, W)", traced, net::kReportNone);
    auto b = remote_->Query("ancestor(adam, W)", traced, net::kReportNone);
    ASSERT_TRUE(a.ok()) << "in-process: " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << "remote: " << b.status().ToString();
    ASSERT_NE(a->trace, nullptr) << "in-process result lost its span tree";
    ASSERT_NE(b->trace, nullptr) << "remote result lost its span tree";

    // The remote tree is the server's request-lifecycle wrapper; the
    // engine tree hangs beneath net.execute.
    EXPECT_EQ(a->trace->name.rfind("query:", 0), 0u) << a->trace->name;
    EXPECT_EQ(b->trace->name, "net.request");
    std::vector<std::string> wrapper_names;
    for (const trace::SpanNode& child : b->trace->children) {
      wrapper_names.push_back(child.name);
    }
    EXPECT_EQ(wrapper_names,
              (std::vector<std::string>{"net.queue", "net.decode",
                                        "net.execute", "net.encode"}));

    const trace::SpanNode* engine_a = FindEngineRoot(*a->trace);
    const trace::SpanNode* engine_b = FindEngineRoot(*b->trace);
    ASSERT_NE(engine_a, nullptr);
    ASSERT_NE(engine_b, nullptr) << "engine tree missing under net.execute";
    if (label == "parallel4") {
      // Pool threads attach sibling spans in scheduling order.
      EXPECT_EQ(CanonicalSkeleton(*engine_a), CanonicalSkeleton(*engine_b));
    } else {
      EXPECT_EQ(TreeSkeleton(*engine_a), TreeSkeleton(*engine_b));
    }
  }

  // Untraced queries ship no trees on either transport.
  auto plain = remote_->Query("ancestor(adam, W)", {}, net::kReportNone);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->trace, nullptr);
}

TEST_F(ClientOracleTest, ReportRenderingsMatchAcrossTransports) {
  ConsultBoth("anc(X,Y) :- par(X,Y).\npar(a,b).\n", "inline program");
  // The text report embeds timings; ask for the plan-shaped JSON-free
  // check instead: same explain plan rows on both sides.
  auto options =
      testbed::QueryOptions{}.WithExplain(testbed::ExplainMode::kPlan);
  auto a = local_->Query("anc(a, W)", options, net::kReportNone);
  auto b = remote_->Query("anc(a, W)", options, net::kReportNone);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(a->rows.size(), 0u);  // the rendered plan
  // The tail of the rendered plan carries wall-clock timings, which are
  // legitimately run-dependent; the plan shape above it must agree.
  auto plan_rows = [](const QueryResultSet& rs) {
    std::vector<std::string> out;
    for (const Tuple& row : rs.rows) {
      std::string line = row[0].as_string();
      if (line.rfind("compile:", 0) == 0) break;
      out.push_back(std::move(line));
    }
    return out;
  };
  EXPECT_EQ(plan_rows(*a), plan_rows(*b));
  EXPECT_GT(plan_rows(*a).size(), 0u);

  // Errors agree on code and message.
  auto bad_a = local_->Query("undefined_pred(X)", {}, net::kReportNone);
  auto bad_b = remote_->Query("undefined_pred(X)", {}, net::kReportNone);
  ASSERT_FALSE(bad_a.ok());
  ASSERT_FALSE(bad_b.ok());
  EXPECT_EQ(bad_a.status().code(), bad_b.status().code());
  EXPECT_EQ(bad_a.status().message(), bad_b.status().message());
}

}  // namespace
}  // namespace dkb
