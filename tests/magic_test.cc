#include <gtest/gtest.h>

#include <algorithm>

#include "datalog/parser.h"
#include "magic/adornment.h"
#include "magic/magic_sets.h"

namespace dkb::magic {
namespace {

std::vector<datalog::Rule> Rules(const std::string& text) {
  auto program = datalog::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return program->rules;
}

datalog::Atom Goal(const std::string& text) {
  auto atom = datalog::ParseQuery(text);
  EXPECT_TRUE(atom.ok()) << atom.status().ToString();
  return *atom;
}

bool HasRule(const MagicRewrite& rewrite, const std::string& text) {
  auto rule = datalog::ParseRule(text);
  EXPECT_TRUE(rule.ok()) << rule.status().ToString();
  return std::find(rewrite.rules.begin(), rewrite.rules.end(), *rule) !=
         rewrite.rules.end();
}

TEST(AdornmentTest, AdornAtom) {
  auto atom = Goal("p(a, X, Y)");
  EXPECT_EQ(AdornAtom(atom, {}), "bff");
  EXPECT_EQ(AdornAtom(atom, {"X"}), "bbf");
  EXPECT_EQ(AdornAtom(atom, {"X", "Y"}), "bbb");
}

TEST(AdornmentTest, Names) {
  EXPECT_EQ(AdornedName("anc", "bf"), "anc__bf");
  EXPECT_EQ(MagicName("anc", "bf"), "m_anc__bf");
  EXPECT_TRUE(IsMagicPredicateName("m_anc__bf"));
  EXPECT_FALSE(IsMagicPredicateName("anc__bf"));
  EXPECT_TRUE(HasBound("bf"));
  EXPECT_FALSE(HasBound("fff"));
}

TEST(MagicSetsTest, RightLinearAncestorBf) {
  auto rules = Rules(
      "anc(X,Y) :- par(X,Y).\n"
      "anc(X,Y) :- par(X,Z), anc(Z,Y).\n");
  auto rewrite =
      ApplyGeneralizedMagicSets(rules, Goal("anc(john, W)"), {"anc"});
  ASSERT_TRUE(rewrite.ok()) << rewrite.status().ToString();
  EXPECT_TRUE(rewrite->rewritten);
  EXPECT_EQ(rewrite->adorned_query.predicate, "anc__bf");
  // The classic result:
  //   magic seed          m_anc__bf(john).
  //   magic rule          m_anc__bf(Z) :- m_anc__bf(X), par(X,Z).
  //   modified exit       anc__bf(X,Y) :- m_anc__bf(X), par(X,Y).
  //   modified recursive  anc__bf(X,Y) :- m_anc__bf(X), par(X,Z),
  //                                       anc__bf(Z,Y).
  EXPECT_EQ(rewrite->rules.size(), 4u);
  EXPECT_TRUE(HasRule(*rewrite, "m_anc__bf(john)."));
  EXPECT_TRUE(HasRule(*rewrite, "m_anc__bf(Z) :- m_anc__bf(X), par(X, Z)."));
  EXPECT_TRUE(
      HasRule(*rewrite, "anc__bf(X, Y) :- m_anc__bf(X), par(X, Y)."));
  EXPECT_TRUE(HasRule(
      *rewrite,
      "anc__bf(X, Y) :- m_anc__bf(X), par(X, Z), anc__bf(Z, Y)."));
  EXPECT_EQ(rewrite->magic_predicates,
            (std::set<std::string>{"m_anc__bf"}));
  EXPECT_EQ(rewrite->adorned_predicates,
            (std::set<std::string>{"anc__bf"}));
}

TEST(MagicSetsTest, AllFreeQueryIsIdentity) {
  auto rules = Rules("anc(X,Y) :- par(X,Y).\n");
  auto rewrite = ApplyGeneralizedMagicSets(rules, Goal("anc(X, Y)"), {"anc"});
  ASSERT_TRUE(rewrite.ok());
  EXPECT_FALSE(rewrite->rewritten);
  EXPECT_EQ(rewrite->rules.size(), rules.size());
  EXPECT_EQ(rewrite->adorned_query.predicate, "anc");
}

TEST(MagicSetsTest, BasePredicateQueryIsIdentity) {
  auto rewrite = ApplyGeneralizedMagicSets({}, Goal("par(john, X)"), {});
  ASSERT_TRUE(rewrite.ok());
  EXPECT_FALSE(rewrite->rewritten);
}

TEST(MagicSetsTest, SameGenerationBf) {
  auto rules = Rules(
      "sg(X,Y) :- flat(X,Y).\n"
      "sg(X,Y) :- up(X,U), sg(U,V), down(V,Y).\n");
  auto rewrite = ApplyGeneralizedMagicSets(rules, Goal("sg(a, W)"), {"sg"});
  ASSERT_TRUE(rewrite.ok());
  EXPECT_TRUE(rewrite->rewritten);
  EXPECT_TRUE(HasRule(*rewrite, "m_sg__bf(a)."));
  EXPECT_TRUE(HasRule(*rewrite, "m_sg__bf(U) :- m_sg__bf(X), up(X, U)."));
  EXPECT_TRUE(HasRule(*rewrite,
                      "sg__bf(X, Y) :- m_sg__bf(X), up(X, U), sg__bf(U, V), "
                      "down(V, Y)."));
}

TEST(MagicSetsTest, SecondArgumentBound) {
  auto rules = Rules(
      "anc(X,Y) :- par(X,Y).\n"
      "anc(X,Y) :- par(X,Z), anc(Z,Y).\n");
  auto rewrite =
      ApplyGeneralizedMagicSets(rules, Goal("anc(W, mary)"), {"anc"});
  ASSERT_TRUE(rewrite.ok());
  EXPECT_TRUE(rewrite->rewritten);
  EXPECT_EQ(rewrite->adorned_query.predicate, "anc__fb");
  EXPECT_TRUE(HasRule(*rewrite, "m_anc__fb(mary)."));
  // With Y bound and left-to-right SIPS, the recursive call sees Y bound:
  // m_anc__fb(Y) :- m_anc__fb(Y). is degenerate but harmless; the key rule:
  EXPECT_TRUE(
      HasRule(*rewrite, "anc__fb(X, Y) :- m_anc__fb(Y), par(X, Y)."));
}

TEST(MagicSetsTest, MultiLevelPropagation) {
  // top calls mid with its first arg bound; mid calls bot likewise.
  auto rules = Rules(
      "top(X,Y) :- mid(X,Y).\n"
      "mid(X,Y) :- bot(X,Y).\n"
      "bot(X,Y) :- e(X,Y).\n");
  auto rewrite = ApplyGeneralizedMagicSets(rules, Goal("top(a, W)"),
                                           {"top", "mid", "bot"});
  ASSERT_TRUE(rewrite.ok());
  EXPECT_TRUE(HasRule(*rewrite, "m_mid__bf(X) :- m_top__bf(X)."));
  EXPECT_TRUE(HasRule(*rewrite, "m_bot__bf(X) :- m_mid__bf(X)."));
  EXPECT_TRUE(HasRule(*rewrite, "bot__bf(X, Y) :- m_bot__bf(X), e(X, Y)."));
}

TEST(MagicSetsTest, BothArgumentsBound) {
  auto rules = Rules(
      "anc(X,Y) :- par(X,Y).\n"
      "anc(X,Y) :- par(X,Z), anc(Z,Y).\n");
  auto rewrite =
      ApplyGeneralizedMagicSets(rules, Goal("anc(john, mary)"), {"anc"});
  ASSERT_TRUE(rewrite.ok());
  EXPECT_TRUE(rewrite->rewritten);
  EXPECT_EQ(rewrite->adorned_query.predicate, "anc__bb");
  EXPECT_TRUE(HasRule(*rewrite, "m_anc__bb(john, mary)."));
  // Recursive call: Z bound via par, Y bound from head.
  EXPECT_TRUE(HasRule(
      *rewrite, "m_anc__bb(Z, Y) :- m_anc__bb(X, Y), par(X, Z)."));
}

TEST(MagicSetsTest, AllFreeBodyAtomGetsUnguardedAdornedCopy) {
  // q is called with no bound arguments: its adorned version q__ff must be
  // defined (computing the full q) with no magic guard.
  auto rules = Rules(
      "p(X,Y) :- e(X,Y).\n"
      "q(X,Y) :- e(X,Y).\n"
      "p(X,Y) :- q(Y2, Y), e(X, Y2).\n");
  auto rewrite =
      ApplyGeneralizedMagicSets(rules, Goal("p(a, W)"), {"p", "q"});
  ASSERT_TRUE(rewrite.ok()) << rewrite.status().ToString();
  EXPECT_TRUE(HasRule(*rewrite, "q__ff(X, Y) :- e(X, Y)."));
  EXPECT_EQ(rewrite->magic_predicates.count("m_q__ff"), 0u);
}

}  // namespace
}  // namespace dkb::magic
