#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "testbed/testbed.h"
#include "workload/data_gen.h"
#include "workload/queries.h"

namespace dkb::testbed {
namespace {

/// Rows sorted into a canonical order: parallel evaluation must be
/// bitwise-identical to serial up to row order.
std::vector<Tuple> SortedRows(QueryResult result) {
  std::sort(result.rows.begin(), result.rows.end());
  return result.rows;
}

/// Two mutually independent recursive cliques feeding a flat combiner:
/// the SCC wavefront scheduler can run anc1 and anc2 concurrently.
constexpr const char* kTwoCliqueProgram =
    "anc1(X, Y) :- par1(X, Y).\n"
    "anc1(X, Y) :- par1(X, Z), anc1(Z, Y).\n"
    "anc2(X, Y) :- par2(X, Y).\n"
    "anc2(X, Y) :- par2(X, Z), anc2(Z, Y).\n"
    "both(X, Y) :- anc1(X, Y).\n"
    "both(X, Y) :- anc2(X, Y).\n"
    "par1(a1, b1). par1(b1, c1). par1(c1, d1).\n"
    "par2(a2, b2). par2(b2, c2). par2(c2, d2). par2(d2, e2).\n";

std::unique_ptr<Testbed> MakeTwoCliqueTestbed() {
  auto tb = Testbed::Create();
  EXPECT_TRUE(tb.ok()) << tb.status().ToString();
  Status s = (*tb)->Consult(kTwoCliqueProgram);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return std::move(*tb);
}

std::unique_ptr<Testbed> MakeTreeTestbed(int depth) {
  auto tb = Testbed::Create();
  EXPECT_TRUE(tb.ok()) << tb.status().ToString();
  Status s = (*tb)->Consult(workload::AncestorRules());
  EXPECT_TRUE(s.ok()) << s.ToString();
  s = (*tb)->DefineBase("parent", {DataType::kVarchar, DataType::kVarchar});
  EXPECT_TRUE(s.ok()) << s.ToString();
  auto tree = workload::MakeFullBinaryTrees(1, depth);
  s = (*tb)->AddFacts("parent", tree.ToTuples());
  EXPECT_TRUE(s.ok()) << s.ToString();
  return std::move(*tb);
}

void ExpectParallelMatchesSerial(Testbed* tb, const std::string& goal,
                                 QueryOptions base) {
  auto serial = tb->Query(goal, QueryOptions(base).WithParallelism(1));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (int par : {2, 4, 0}) {
    auto parallel = tb->Query(goal, QueryOptions(base).WithParallelism(par));
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(SortedRows(serial->result), SortedRows(parallel->result))
        << "parallelism=" << par << " diverged on " << goal;
    EXPECT_EQ(parallel->report.exec.nodes.size(), serial->report.exec.nodes.size());
    // Node stats merge in program order regardless of completion order.
    for (size_t i = 0; i < parallel->report.exec.nodes.size(); ++i) {
      EXPECT_EQ(parallel->report.exec.nodes[i].label, serial->report.exec.nodes[i].label);
      EXPECT_EQ(parallel->report.exec.nodes[i].tuples, serial->report.exec.nodes[i].tuples);
    }
  }
}

TEST(ParallelLfpTest, IndependentCliquesSemiNaive) {
  auto tb = MakeTwoCliqueTestbed();
  ExpectParallelMatchesSerial(tb.get(), "both(X, Y)",
                              QueryOptions::SemiNaive());
}

TEST(ParallelLfpTest, IndependentCliquesNaive) {
  auto tb = MakeTwoCliqueTestbed();
  ExpectParallelMatchesSerial(tb.get(), "both(X, Y)", QueryOptions::Naive());
}

TEST(ParallelLfpTest, BoundQueryOnEachClique) {
  auto tb = MakeTwoCliqueTestbed();
  ExpectParallelMatchesSerial(tb.get(), "anc1(a1, W)",
                              QueryOptions::SemiNaive());
  ExpectParallelMatchesSerial(tb.get(), "anc2(a2, W)",
                              QueryOptions::SemiNaive());
}

TEST(ParallelLfpTest, AncestorTreeWorkload) {
  auto tb = MakeTreeTestbed(/*depth=*/6);
  std::string root = workload::TreeNodeName(0, 0);
  ExpectParallelMatchesSerial(tb.get(), "ancestor('" + root + "', W)",
                              QueryOptions::SemiNaive());
  ExpectParallelMatchesSerial(tb.get(), "ancestor(X, Y)",
                              QueryOptions::SemiNaive());
}

TEST(ParallelLfpTest, MagicSetsParallel) {
  auto tb = MakeTreeTestbed(/*depth=*/6);
  std::string root = workload::TreeNodeName(0, 0);
  ExpectParallelMatchesSerial(tb.get(), "ancestor('" + root + "', W)",
                              QueryOptions::Magic());
  ExpectParallelMatchesSerial(tb.get(), "ancestor('" + root + "', W)",
                              QueryOptions::SupplementaryMagic());
}

TEST(ParallelLfpTest, SameGenerationParallel) {
  auto tb = Testbed::Create();
  ASSERT_TRUE(tb.ok()) << tb.status().ToString();
  Status s = (*tb)->Consult(
      "sg(X, Y) :- flat(X, Y).\n"
      "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n"
      "up(a, b). up(c, b). up(d, e). up(f, e).\n"
      "flat(b, e). flat(e, b).\n"
      "down(b, a). down(b, c). down(e, d). down(e, f).\n");
  ASSERT_TRUE(s.ok()) << s.ToString();
  ExpectParallelMatchesSerial(tb->get(), "sg(a, W)",
                              QueryOptions::SemiNaive());
  ExpectParallelMatchesSerial(tb->get(), "sg(a, W)", QueryOptions::Magic());
}

TEST(ParallelLfpTest, ParallelismKnobDefaultsSerial) {
  QueryOptions o;
  EXPECT_EQ(o.EffectivePolicy().lfp_parallelism, 1);
  o.WithParallelism(4);
  EXPECT_EQ(o.EffectivePolicy().lfp_parallelism, 4);
}

}  // namespace
}  // namespace dkb::testbed
