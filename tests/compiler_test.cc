#include <gtest/gtest.h>

#include <algorithm>

#include "datalog/parser.h"
#include "km/compiler.h"
#include "testbed/testbed.h"
#include "workload/queries.h"

namespace dkb::km {
namespace {

datalog::Atom Goal(const std::string& text) {
  auto atom = datalog::ParseQuery(text);
  EXPECT_TRUE(atom.ok());
  return *atom;
}

class CompilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto tb = testbed::Testbed::Create();
    ASSERT_TRUE(tb.ok());
    tb_ = std::move(*tb);
  }

  Result<CompiledQuery> Compile(const std::string& goal,
                                bool magic = false) {
    testbed::QueryOptions opts = magic ? testbed::QueryOptions::Magic()
                                       : testbed::QueryOptions::SemiNaive();
    return tb_->CompileOnly(Goal(goal), opts, &stats_);
  }

  std::unique_ptr<testbed::Testbed> tb_;
  CompilationStats stats_;
};

TEST_F(CompilerTest, ProgramStructureForAncestor) {
  ASSERT_TRUE(tb_->Consult(workload::AncestorRules() + "parent(a, b).\n")
                  .ok());
  auto compiled = Compile("?- ancestor(a, W).");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const QueryProgram& program = compiled->program;
  // One clique node for ancestor.
  ASSERT_EQ(program.nodes.size(), 1u);
  EXPECT_TRUE(program.nodes[0].is_clique);
  EXPECT_EQ(program.nodes[0].predicates,
            (std::vector<std::string>{"ancestor"}));
  EXPECT_EQ(program.nodes[0].exit_rules.size(), 1u);
  EXPECT_EQ(program.nodes[0].recursive_rules.size(), 1u);
  // Bindings for both predicates; correct table names.
  EXPECT_EQ(program.bindings.at("ancestor").table, "idb_ancestor");
  EXPECT_EQ(program.bindings.at("parent").table, "edb_parent");
  EXPECT_TRUE(program.bindings.at("parent").is_base);
  // One CREATE + one DROP for the derived table.
  ASSERT_EQ(program.create_statements.size(), 1u);
  EXPECT_NE(program.create_statements[0].find("CREATE TABLE idb_ancestor"),
            std::string::npos);
  // Final select filters the bound argument and names the variable.
  EXPECT_EQ(program.final_select,
            "SELECT DISTINCT c1 AS W FROM idb_ancestor WHERE c0 = 'a'");
  EXPECT_EQ(program.answer_columns, (std::vector<std::string>{"W"}));
  EXPECT_FALSE(program.boolean_query);
}

TEST_F(CompilerTest, BooleanQueryUsesCount) {
  ASSERT_TRUE(tb_->Consult(workload::AncestorRules() + "parent(a, b).\n")
                  .ok());
  auto compiled = Compile("?- ancestor(a, b).");
  ASSERT_TRUE(compiled.ok());
  EXPECT_TRUE(compiled->program.boolean_query);
  EXPECT_NE(compiled->program.final_select.find("SELECT COUNT(*)"),
            std::string::npos);
}

TEST_F(CompilerTest, RepeatedQueryVariableBecomesEquality) {
  ASSERT_TRUE(tb_->Consult(workload::AncestorRules() + "parent(a, b).\n")
                  .ok());
  auto compiled = Compile("?- ancestor(X, X).");
  ASSERT_TRUE(compiled.ok());
  EXPECT_NE(compiled->program.final_select.find("c1 = c0"),
            std::string::npos);
  EXPECT_EQ(compiled->program.answer_columns.size(), 1u);
}

TEST_F(CompilerTest, MagicCompilationProducesTwoCliques) {
  ASSERT_TRUE(tb_->Consult(workload::AncestorRules() + "parent(a, b).\n")
                  .ok());
  auto compiled = Compile("?- ancestor(a, W).", /*magic=*/true);
  ASSERT_TRUE(compiled.ok());
  EXPECT_TRUE(stats_.magic_applied);
  const QueryProgram& program = compiled->program;
  EXPECT_EQ(program.query.predicate, "ancestor__bf");
  int cliques = 0;
  for (const auto& node : program.nodes) {
    if (node.is_clique) ++cliques;
  }
  EXPECT_EQ(cliques, 2);  // m_ancestor__bf clique, then ancestor__bf
  // The magic clique must be ordered before the modified clique.
  EXPECT_EQ(program.nodes.front().predicates[0], "m_ancestor__bf");
}

TEST_F(CompilerTest, QueryOverBasePredicateSkipsEvaluation) {
  ASSERT_TRUE(tb_->Consult("parent(a, b).\n").ok());
  auto compiled = Compile("?- parent(a, X).");
  ASSERT_TRUE(compiled.ok());
  EXPECT_TRUE(compiled->program.nodes.empty());
  EXPECT_NE(compiled->program.final_select.find("edb_parent"),
            std::string::npos);
}

TEST_F(CompilerTest, WorkspaceStoredAlternatingClosure) {
  // Exercises the §4.2 steps 1.3-1.5 loop: extraction from the Stored DKB
  // surfaces a predicate (c) for which the *workspace* holds an additional
  // rule, which must be pulled in by the next round of the closure.
  ASSERT_TRUE(tb_->Consult("parent(x, y).\nparent2(x, z).\n").ok());
  ASSERT_TRUE(tb_->AddRule("c(X,Y) :- parent(X,Y).").ok());
  ASSERT_TRUE(tb_->AddRule("b(X,Y) :- c(X,Y).").ok());
  ASSERT_TRUE(tb_->UpdateStoredDkb().ok());
  tb_->ClearWorkspace();
  // New session: a depends on stored b; c gains a new workspace rule.
  ASSERT_TRUE(tb_->AddRule("a(X,Y) :- b(X,Y).").ok());
  ASSERT_TRUE(tb_->AddRule("c(X,Y) :- parent2(X,Y).").ok());

  auto compiled = Compile("?- a(x, W).");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ(stats_.rules_relevant, 4);  // a(ws), b(st), c(st), c(ws)
  EXPECT_EQ(stats_.rules_extracted_stored, 2);
  for (const char* p : {"a", "b", "c"}) {
    EXPECT_EQ(compiled->program.bindings.count(p), 1u) << p;
  }
  // And the workspace c-rule's contribution reaches the answers.
  auto outcome = tb_->Query("?- a(x, W).");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->result.rows.size(), 2u);  // y via parent, z via parent2
}

TEST_F(CompilerTest, IrrelevantRulesAreNotCompiled) {
  ASSERT_TRUE(tb_->Consult("parent(a, b).\n"
                           "wanted(X,Y) :- parent(X,Y).\n"
                           "unrelated(X,Y) :- parent(X,Y).\n")
                  .ok());
  auto compiled = Compile("?- wanted(a, W).");
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(stats_.rules_relevant, 1);
  EXPECT_EQ(compiled->program.bindings.count("unrelated"), 0u);
}

TEST_F(CompilerTest, ArityMismatchInQueryFails) {
  ASSERT_TRUE(tb_->Consult(workload::AncestorRules() + "parent(a, b).\n")
                  .ok());
  auto compiled = Compile("?- ancestor(a, b, c).");
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kSemanticError);
}

TEST_F(CompilerTest, QueryConstantTypeMismatchFails) {
  ASSERT_TRUE(tb_->Consult(workload::AncestorRules() + "parent(a, b).\n")
                  .ok());
  auto compiled = Compile("?- ancestor(42, W).");
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kTypeError);
}

TEST_F(CompilerTest, UnknownQueryPredicateFails) {
  auto compiled = Compile("?- ghost(a, W).");
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kSemanticError);
}

TEST_F(CompilerTest, AllSqlTextsParse) {
  ASSERT_TRUE(tb_->Consult(workload::SameGenerationRules() +
                           "flat(g, g).\nup(a, g).\ndown(g, a).\n")
                  .ok());
  auto compiled = Compile("?- sg(a, W).", /*magic=*/true);
  ASSERT_TRUE(compiled.ok());
  // t_comp parsed every generated text without error; double-check here.
  for (const std::string& sql : compiled->program.AllSqlTexts()) {
    EXPECT_FALSE(sql.empty());
  }
  EXPECT_GT(stats_.t_comp_us, 0);
}

TEST_F(CompilerTest, NonCompiledStorageCompilesIdentically) {
  testbed::TestbedOptions options;
  options.stored.compiled_rule_storage = false;
  auto tb2_or = testbed::Testbed::Create(options);
  ASSERT_TRUE(tb2_or.ok());
  auto tb2 = std::move(*tb2_or);
  const std::string program =
      "a(X,Y) :- b(X,Y).\nb(X,Y) :- parent(X,Y).\nparent(x, y).\n";
  ASSERT_TRUE(tb2->Consult(program).ok());
  ASSERT_TRUE(tb2->UpdateStoredDkb().ok());
  tb2->ClearWorkspace();
  testbed::QueryOptions opts;
  CompilationStats stats;
  auto compiled = tb2->CompileOnly(Goal("?- a(x, W)."), opts, &stats);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ(stats.rules_relevant, 2);
}

}  // namespace
}  // namespace dkb::km
