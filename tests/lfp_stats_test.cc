// Tests for the run time library's instrumentation and iteration behaviour:
// the counters behind the paper's Tables 5/8 and Figures 12-14.

#include <gtest/gtest.h>

#include <string>

#include "testbed/testbed.h"
#include "workload/data_gen.h"
#include "workload/queries.h"

namespace dkb::lfp {
namespace {

std::unique_ptr<testbed::Testbed> ListTestbed(int length) {
  auto tb_or = testbed::Testbed::Create();
  EXPECT_TRUE(tb_or.ok());
  auto tb = std::move(*tb_or);
  EXPECT_TRUE(tb->Consult(workload::AncestorRules()).ok());
  EXPECT_TRUE(
      tb->DefineBase("parent", {DataType::kVarchar, DataType::kVarchar})
          .ok());
  auto lists = workload::MakeLists(1, length);
  EXPECT_TRUE(tb->AddFacts("parent", lists.ToTuples()).ok());
  return tb;
}

testbed::QueryOutcome RunQuery(testbed::Testbed* tb, const std::string& goal,
                          LfpStrategy strategy, bool magic = false) {
  testbed::QueryOptions opts =
      (magic ? testbed::QueryOptions::Magic()
             : testbed::QueryOptions::SemiNaive())
          .WithStrategy(strategy);
  auto outcome = tb->Query(goal, opts);
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  return outcome.ok() ? std::move(*outcome) : testbed::QueryOutcome{};
}

TEST(LfpStatsTest, IterationCountMatchesChainDepth) {
  // A right-linear ancestor over a 12-node chain (11 edges): iteration k
  // derives the paths of length k+1, so the longest path arrives at
  // iteration 10 and iteration 11 finds an empty delta and stops.
  auto tb = ListTestbed(12);
  auto outcome = RunQuery(tb.get(), "?- ancestor(X, Y).",
                     LfpStrategy::kSemiNaive);
  EXPECT_EQ(outcome.result.rows.size(), 66u);  // 11+10+...+1
  EXPECT_EQ(outcome.report.exec.iterations, 11);
}

TEST(LfpStatsTest, NaiveAndSemiNaiveSameIterationCount) {
  auto tb = ListTestbed(9);
  auto semi = RunQuery(tb.get(), "?- ancestor(X, Y).", LfpStrategy::kSemiNaive);
  auto naive = RunQuery(tb.get(), "?- ancestor(X, Y).", LfpStrategy::kNaive);
  EXPECT_EQ(semi.report.exec.iterations, naive.report.exec.iterations);
}

TEST(LfpStatsTest, NonLinearRuleConvergesInLogIterations) {
  // anc(X,Y) :- anc(X,Z), anc(Z,Y) doubles path length per iteration:
  // a 16-node chain closes in ~log2(15)+2 iterations, far fewer than 15.
  auto tb_or = testbed::Testbed::Create();
  ASSERT_TRUE(tb_or.ok());
  auto tb = std::move(*tb_or);
  ASSERT_TRUE(tb->Consult(workload::AncestorRulesNonLinear()).ok());
  ASSERT_TRUE(
      tb->DefineBase("parent", {DataType::kVarchar, DataType::kVarchar})
          .ok());
  ASSERT_TRUE(
      tb->AddFacts("parent", workload::MakeLists(1, 16).ToTuples()).ok());
  auto outcome =
      RunQuery(tb.get(), "?- ancestor(X, Y).", LfpStrategy::kSemiNaive);
  EXPECT_EQ(outcome.result.rows.size(), 120u);  // C(16,2)
  EXPECT_LE(outcome.report.exec.iterations, 6);
  EXPECT_GE(outcome.report.exec.iterations, 4);
}

TEST(LfpStatsTest, TimingBucketsArePopulated) {
  auto tb = ListTestbed(30);
  for (auto strategy : {LfpStrategy::kNaive, LfpStrategy::kSemiNaive}) {
    auto outcome = RunQuery(tb.get(), "?- ancestor(X, Y).", strategy);
    EXPECT_GT(outcome.report.exec.t_temp_us, 0) << StrategyName(strategy);
    EXPECT_GT(outcome.report.exec.t_rhs_us, 0) << StrategyName(strategy);
    EXPECT_GT(outcome.report.exec.t_term_us, 0) << StrategyName(strategy);
    EXPECT_GE(outcome.report.exec.t_total_us,
              outcome.report.exec.t_rhs_us + outcome.report.exec.t_term_us);
  }
}

TEST(LfpStatsTest, NaiveDoesMoreRhsWorkThanSemiNaive) {
  auto tb = ListTestbed(40);
  auto naive = RunQuery(tb.get(), "?- ancestor(X, Y).", LfpStrategy::kNaive);
  auto semi = RunQuery(tb.get(), "?- ancestor(X, Y).", LfpStrategy::kSemiNaive);
  EXPECT_GT(naive.report.exec.t_rhs_us + naive.report.exec.t_term_us,
            semi.report.exec.t_rhs_us + semi.report.exec.t_term_us);
}

TEST(LfpStatsTest, NodeStatsLabelAndTuples) {
  auto tb = ListTestbed(5);
  auto outcome = RunQuery(tb.get(), "?- ancestor(X, Y).",
                     LfpStrategy::kSemiNaive);
  ASSERT_EQ(outcome.report.exec.nodes.size(), 1u);
  const NodeStats& ns = outcome.report.exec.nodes[0];
  EXPECT_EQ(ns.label, "ancestor");
  EXPECT_TRUE(ns.is_clique);
  EXPECT_EQ(ns.tuples, 10);  // closure of a 5-node chain
  EXPECT_GT(ns.t_us, 0);
}

TEST(LfpStatsTest, MagicProgramReportsMagicAndModifiedNodes) {
  auto tb = ListTestbed(8);
  auto outcome = RunQuery(tb.get(), "?- ancestor('l0_0', W).",
                     LfpStrategy::kSemiNaive, /*magic=*/true);
  ASSERT_EQ(outcome.report.exec.nodes.size(), 2u);
  EXPECT_EQ(outcome.report.exec.nodes[0].label, "m_ancestor__bf");
  EXPECT_EQ(outcome.report.exec.nodes[1].label, "ancestor__bf");
  // Magic set: the whole chain is reachable from the head -> 8 nodes.
  EXPECT_EQ(outcome.report.exec.nodes[0].tuples, 8);
  EXPECT_EQ(outcome.result.rows.size(), 7u);
}

TEST(LfpStatsTest, AnswerTuplesTracked) {
  auto tb = ListTestbed(6);
  auto outcome = RunQuery(tb.get(), "?- ancestor('l0_0', W).",
                     LfpStrategy::kSemiNaive);
  EXPECT_EQ(outcome.report.exec.answer_tuples, 5);
}

TEST(LfpStatsTest, NativeSkipsSqlBuckets) {
  auto tb = ListTestbed(20);
  auto outcome = RunQuery(tb.get(), "?- ancestor(X, Y).", LfpStrategy::kNative);
  // Native attributes load/store to t_temp and joins to t_rhs; its
  // termination checks are near-free.
  EXPECT_GT(outcome.report.exec.t_rhs_us, 0);
  EXPECT_LT(outcome.report.exec.t_term_us, outcome.report.exec.t_rhs_us + 1);
}

TEST(LfpStatsTest, MutualRecursionIterationsCoupled) {
  auto tb_or = testbed::Testbed::Create();
  ASSERT_TRUE(tb_or.ok());
  auto tb = std::move(*tb_or);
  ASSERT_TRUE(tb->Consult(
                    "odd(X, Y) :- edge(X, Y).\n"
                    "odd(X, Y) :- edge(X, Z), even(Z, Y).\n"
                    "even(X, Y) :- edge(X, Z), odd(Z, Y).\n"
                    "edge(n0, n1).\nedge(n1, n2).\nedge(n2, n3).\n"
                    "edge(n3, n4).\n")
                  .ok());
  auto outcome = RunQuery(tb.get(), "?- odd(n0, Y).", LfpStrategy::kSemiNaive);
  ASSERT_EQ(outcome.report.exec.nodes.size(), 1u);
  // odd and even evaluate together in one clique.
  EXPECT_EQ(outcome.report.exec.nodes[0].label, "even,odd");
  EXPECT_EQ(outcome.result.rows.size(), 2u);  // n1, n3
}

}  // namespace
}  // namespace dkb::lfp
