#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "km/type_checker.h"

namespace dkb::km {
namespace {

std::vector<datalog::Rule> Rules(const std::string& text) {
  auto program = datalog::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  std::vector<datalog::Rule> out = program->rules;
  for (const datalog::Rule& f : program->facts) out.push_back(f);
  return out;
}

const std::map<std::string, PredicateTypes> kBase = {
    {"parent", {DataType::kVarchar, DataType::kVarchar}},
    {"weight", {DataType::kVarchar, DataType::kInteger}},
};

TEST(TypeCheckTest, SimpleProjection) {
  auto result = TypeCheck(Rules("p(Y, X) :- parent(X, Y).\n"), kBase);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->derived_types.at("p"),
            (PredicateTypes{DataType::kVarchar, DataType::kVarchar}));
}

TEST(TypeCheckTest, MixedTypesPropagate) {
  auto result = TypeCheck(Rules("wp(X, W) :- weight(X, W).\n"), kBase);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->derived_types.at("wp"),
            (PredicateTypes{DataType::kVarchar, DataType::kInteger}));
}

TEST(TypeCheckTest, ConstantsInHead) {
  auto result =
      TypeCheck(Rules("tagged(fixed, 7, X) :- parent(X, Y2).\n"), kBase);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->derived_types.at("tagged"),
            (PredicateTypes{DataType::kVarchar, DataType::kInteger,
                            DataType::kVarchar}));
}

TEST(TypeCheckTest, RecursivePredicateReachesFixpoint) {
  auto result = TypeCheck(Rules("anc(X,Y) :- parent(X,Y).\n"
                                "anc(X,Y) :- parent(X,Z), anc(Z,Y).\n"),
                          kBase);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->derived_types.at("anc"),
            (PredicateTypes{DataType::kVarchar, DataType::kVarchar}));
}

TEST(TypeCheckTest, MutualRecursionReachesFixpoint) {
  auto result = TypeCheck(Rules("a(X,Y) :- parent(X,Y).\n"
                                "a(X,Y) :- b(X,Y).\n"
                                "b(X,Y) :- a(X,Z), parent(Z,Y).\n"),
                          kBase);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->derived_types.at("b"),
            (PredicateTypes{DataType::kVarchar, DataType::kVarchar}));
}

TEST(TypeCheckTest, SeedFactTypesItsPredicate) {
  auto result = TypeCheck(Rules("m_anc(alice).\n"
                                "anc(X,Y) :- m_anc(X), parent(X,Y).\n"),
                          kBase);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->derived_types.at("m_anc"),
            (PredicateTypes{DataType::kVarchar}));
}

TEST(TypeCheckTest, UndefinedBodyPredicateIsSemanticError) {
  auto result = TypeCheck(Rules("p(X,Y) :- ghost(X,Y).\n"), kBase);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kSemanticError);
}

TEST(TypeCheckTest, UnsafeHeadVariableIsSemanticError) {
  auto result = TypeCheck(Rules("p(X, Q) :- parent(X, Y2).\n"), kBase);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kSemanticError);
}

TEST(TypeCheckTest, ConflictingRuleTypesIsTypeError) {
  auto result = TypeCheck(Rules("p(X, Y) :- parent(X, Y).\n"
                                "p(X, W) :- weight(X, W).\n"),
                          kBase);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTypeError);
}

TEST(TypeCheckTest, VariableAtConflictingTypesIsTypeError) {
  auto result =
      TypeCheck(Rules("p(X) :- parent(X, V), weight(Y2, V).\n"), kBase);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTypeError);
}

TEST(TypeCheckTest, ConstantAtWrongPositionIsTypeError) {
  auto result = TypeCheck(Rules("p(X) :- weight(X, notanumber).\n"), kBase);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTypeError);
}

TEST(TypeCheckTest, ArityMismatchAcrossUsesIsSemanticError) {
  auto result = TypeCheck(Rules("p(X, Y) :- q(X, Y).\n"
                                "q(X, Y) :- parent(X, Y).\n"
                                "r(X) :- q(X, Y2, Z2), parent(Y2, Z2).\n"),
                          kBase);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kSemanticError);
}

TEST(TypeCheckTest, BaseArityMismatchIsSemanticError) {
  auto result = TypeCheck(Rules("p(X) :- parent(X).\n"), kBase);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kSemanticError);
}

TEST(TypeCheckTest, UnderivableTypeIsTypeError) {
  // p defined only in terms of itself: column types cannot be inferred.
  auto result = TypeCheck(Rules("p(X, Y) :- p(Y, X).\n"), kBase);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTypeError);
}

TEST(TypeCheckTest, EmptyRuleSetIsFine) {
  auto result = TypeCheck({}, kBase);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->derived_types.empty());
}

}  // namespace
}  // namespace dkb::km
