#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"

namespace dkb::sql {
namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LexerTest, KeywordsAndIdentifiers) {
  auto toks = Tokenize("select Foo FROM bar");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 5u);  // incl. end
  EXPECT_TRUE((*toks)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*toks)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*toks)[1].text, "Foo");
  EXPECT_TRUE((*toks)[2].IsKeyword("FROM"));
}

TEST(LexerTest, TempTableNames) {
  auto toks = Tokenize("#delta_anc");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*toks)[0].text, "#delta_anc");
}

TEST(LexerTest, StringEscapes) {
  auto toks = Tokenize("'o''neil'");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].type, TokenType::kString);
  EXPECT_EQ((*toks)[0].text, "o'neil");
}

TEST(LexerTest, UnterminatedStringFails) {
  auto toks = Tokenize("'oops");
  EXPECT_FALSE(toks.ok());
}

TEST(LexerTest, NumbersIncludingNegative) {
  auto toks = Tokenize("42 -17");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].int_value, 42);
  EXPECT_EQ((*toks)[1].int_value, -17);
}

TEST(LexerTest, MultiCharOperators) {
  auto toks = Tokenize("a <> b <= c >= d != e");
  ASSERT_TRUE(toks.ok());
  EXPECT_TRUE((*toks)[1].IsSymbol("<>"));
  EXPECT_TRUE((*toks)[3].IsSymbol("<="));
  EXPECT_TRUE((*toks)[5].IsSymbol(">="));
  EXPECT_TRUE((*toks)[7].IsSymbol("!="));
}

TEST(LexerTest, LineComments) {
  auto toks = Tokenize("select -- this is a comment\n x");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 3u);
  EXPECT_EQ((*toks)[1].text, "x");
}

TEST(LexerTest, RejectsGarbage) {
  EXPECT_FALSE(Tokenize("select @foo").ok());
}

// ---------------------------------------------------------------------------
// Parser: DDL
// ---------------------------------------------------------------------------

TEST(ParserTest, CreateTable) {
  auto stmt = ParseStatement(
      "CREATE TABLE parent (par VARCHAR, child VARCHAR, age INT)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ((*stmt)->kind, StatementKind::kCreateTable);
  auto& ct = static_cast<CreateTableStmt&>(**stmt);
  EXPECT_EQ(ct.table, "parent");
  ASSERT_EQ(ct.schema.num_columns(), 3u);
  EXPECT_EQ(ct.schema.column(0).name, "par");
  EXPECT_EQ(ct.schema.column(0).type, DataType::kVarchar);
  EXPECT_EQ(ct.schema.column(2).type, DataType::kInteger);
  EXPECT_FALSE(ct.if_not_exists);
}

TEST(ParserTest, CreateTableIfNotExists) {
  auto stmt = ParseStatement("CREATE TABLE IF NOT EXISTS t (x INT)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(static_cast<CreateTableStmt&>(**stmt).if_not_exists);
}

TEST(ParserTest, CharWithLength) {
  auto stmt = ParseStatement("CREATE TABLE t (name CHAR(20))");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(static_cast<CreateTableStmt&>(**stmt).schema.column(0).type,
            DataType::kVarchar);
}

TEST(ParserTest, DottedTableNames) {
  // Two-part schema-qualified names parse wherever a table name is legal
  // (the sys.* system views live behind these).
  auto select = ParseStatement("SELECT a FROM sys.query_log WHERE a = 1");
  ASSERT_TRUE(select.ok()) << select.status().ToString();
  const auto& sel = static_cast<SelectStatement&>(**select);
  ASSERT_EQ(sel.select->cores[0]->from.size(), 1u);
  EXPECT_EQ(sel.select->cores[0]->from[0].table, "sys.query_log");

  auto aliased = ParseStatement("SELECT q.a FROM sys.query_log q");
  ASSERT_TRUE(aliased.ok()) << aliased.status().ToString();
  EXPECT_EQ(static_cast<SelectStatement&>(**aliased)
                .select->cores[0]
                ->from[0]
                .alias,
            "q");

  auto drop = ParseStatement("DROP TABLE sys.query_log");
  ASSERT_TRUE(drop.ok());
  EXPECT_EQ(static_cast<DropTableStmt&>(**drop).table, "sys.query_log");

  auto insert = ParseStatement("INSERT INTO sys.metrics VALUES (1)");
  ASSERT_TRUE(insert.ok());
  EXPECT_EQ(static_cast<InsertStmt&>(**insert).table, "sys.metrics");

  // A trailing dot is not a dotted name.
  EXPECT_FALSE(ParseStatement("SELECT a FROM sys. WHERE a = 1").ok());
}

TEST(ParserTest, AggregateKeywordsDoubleAsColumnNames) {
  // SUM/MAX/etc. are only aggregate calls when '(' follows; bare they are
  // ordinary identifiers (sys.metrics exposes columns named sum and max).
  auto bare = ParseStatement("SELECT value, sum, max FROM sys.metrics");
  ASSERT_TRUE(bare.ok()) << bare.status().ToString();
  const auto& sel = static_cast<SelectStatement&>(**bare);
  ASSERT_EQ(sel.select->cores[0]->items.size(), 3u);
  EXPECT_EQ(sel.select->cores[0]->items[1].agg, AggFn::kNone);

  auto call = ParseStatement("SELECT SUM(v) FROM t");
  ASSERT_TRUE(call.ok()) << call.status().ToString();
  EXPECT_EQ(static_cast<SelectStatement&>(**call)
                .select->cores[0]
                ->items[0]
                .agg,
            AggFn::kSum);
}

TEST(ParserTest, DropTable) {
  auto stmt = ParseStatement("DROP TABLE t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->kind, StatementKind::kDropTable);
  auto stmt2 = ParseStatement("DROP TABLE IF EXISTS t");
  ASSERT_TRUE(stmt2.ok());
  EXPECT_TRUE(static_cast<DropTableStmt&>(**stmt2).if_exists);
}

TEST(ParserTest, CreateIndex) {
  auto stmt = ParseStatement("CREATE INDEX ix ON rulesource (headpredname)");
  ASSERT_TRUE(stmt.ok());
  auto& ci = static_cast<CreateIndexStmt&>(**stmt);
  EXPECT_EQ(ci.index, "ix");
  EXPECT_EQ(ci.table, "rulesource");
  ASSERT_EQ(ci.columns.size(), 1u);
  EXPECT_FALSE(ci.ordered);
}

TEST(ParserTest, CreateOrderedIndex) {
  auto stmt = ParseStatement("CREATE ORDERED INDEX ix ON t (a, b)");
  ASSERT_TRUE(stmt.ok());
  auto& ci = static_cast<CreateIndexStmt&>(**stmt);
  EXPECT_TRUE(ci.ordered);
  EXPECT_EQ(ci.columns.size(), 2u);
}

// ---------------------------------------------------------------------------
// Parser: DML
// ---------------------------------------------------------------------------

TEST(ParserTest, InsertValues) {
  auto stmt =
      ParseStatement("INSERT INTO parent VALUES ('a','b'), ('c', NULL)");
  ASSERT_TRUE(stmt.ok());
  auto& ins = static_cast<InsertStmt&>(**stmt);
  ASSERT_EQ(ins.rows.size(), 2u);
  EXPECT_EQ(ins.rows[0][0], Value("a"));
  EXPECT_TRUE(ins.rows[1][1].is_null());
  EXPECT_EQ(ins.select, nullptr);
}

TEST(ParserTest, InsertSelect) {
  auto stmt = ParseStatement("INSERT INTO anc SELECT src, dst FROM parent");
  ASSERT_TRUE(stmt.ok());
  auto& ins = static_cast<InsertStmt&>(**stmt);
  EXPECT_TRUE(ins.rows.empty());
  ASSERT_NE(ins.select, nullptr);
}

TEST(ParserTest, DeleteAllAndWhere) {
  auto all = ParseStatement("DELETE FROM t");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(static_cast<DeleteStmt&>(**all).where, nullptr);
  auto where = ParseStatement("DELETE FROM t WHERE x = 3");
  ASSERT_TRUE(where.ok());
  EXPECT_NE(static_cast<DeleteStmt&>(**where).where, nullptr);
}

// ---------------------------------------------------------------------------
// Parser: SELECT
// ---------------------------------------------------------------------------

const SelectStmt& AsSelect(const StatementPtr& stmt) {
  return *static_cast<const SelectStatement&>(*stmt).select;
}

TEST(ParserTest, SelectStarWithAliases) {
  auto stmt = ParseStatement("SELECT * FROM parent p, anc AS a WHERE p.dst = a.src");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectStmt& sel = AsSelect(*stmt);
  ASSERT_EQ(sel.cores.size(), 1u);
  const SelectCore& core = *sel.cores[0];
  ASSERT_EQ(core.from.size(), 2u);
  EXPECT_EQ(core.from[0].alias, "p");
  EXPECT_EQ(core.from[1].alias, "a");
  EXPECT_TRUE(core.items[0].star);
  ASSERT_NE(core.where, nullptr);
}

TEST(ParserTest, SelectDistinctColumns) {
  auto stmt = ParseStatement("SELECT DISTINCT a.x AS col, 5 FROM t a");
  ASSERT_TRUE(stmt.ok());
  const SelectCore& core = *AsSelect(*stmt).cores[0];
  EXPECT_TRUE(core.distinct);
  ASSERT_EQ(core.items.size(), 2u);
  EXPECT_EQ(core.items[0].alias, "col");
  EXPECT_EQ(core.items[1].expr->kind, ExprKind::kLiteral);
}

TEST(ParserTest, CountStar) {
  auto stmt = ParseStatement("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(AsSelect(*stmt).cores[0]->items[0].agg, AggFn::kCountStar);
}

TEST(ParserTest, AggregatesAndGroupBy) {
  auto stmt = ParseStatement(
      "SELECT dept, COUNT(*) AS n, SUM(salary), MIN(age), MAX(age), "
      "COUNT(bonus) FROM emp GROUP BY dept, site");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectCore& core = *AsSelect(*stmt).cores[0];
  ASSERT_EQ(core.items.size(), 6u);
  EXPECT_EQ(core.items[0].agg, AggFn::kNone);
  EXPECT_EQ(core.items[1].agg, AggFn::kCountStar);
  EXPECT_EQ(core.items[1].alias, "n");
  EXPECT_EQ(core.items[2].agg, AggFn::kSum);
  EXPECT_EQ(core.items[3].agg, AggFn::kMin);
  EXPECT_EQ(core.items[4].agg, AggFn::kMax);
  EXPECT_EQ(core.items[5].agg, AggFn::kCount);
  ASSERT_EQ(core.group_by.size(), 2u);
  EXPECT_EQ(core.group_by[0]->kind, ExprKind::kColumnRef);
}

TEST(ParserTest, WherePrecedenceAndOverOr) {
  auto stmt = ParseStatement("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(stmt.ok());
  const auto& where = *AsSelect(*stmt).cores[0]->where;
  ASSERT_EQ(where.kind, ExprKind::kLogical);
  EXPECT_EQ(static_cast<const LogicalExpr&>(where).op, LogicalOp::kOr);
}

TEST(ParserTest, InList) {
  auto stmt = ParseStatement(
      "SELECT * FROM reachablepreds WHERE topredname IN ('p', 'q')");
  ASSERT_TRUE(stmt.ok());
  const auto& where = *AsSelect(*stmt).cores[0]->where;
  ASSERT_EQ(where.kind, ExprKind::kInList);
  EXPECT_EQ(static_cast<const InListExpr&>(where).values.size(), 2u);
}

TEST(ParserTest, NotAndParens) {
  auto stmt =
      ParseStatement("SELECT * FROM t WHERE NOT (a = 1 AND b = 2)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(AsSelect(*stmt).cores[0]->where->kind, ExprKind::kNot);
}

TEST(ParserTest, SetOperations) {
  auto stmt = ParseStatement(
      "SELECT x FROM a UNION SELECT x FROM b EXCEPT SELECT x FROM c");
  ASSERT_TRUE(stmt.ok());
  const SelectStmt& sel = AsSelect(*stmt);
  ASSERT_EQ(sel.cores.size(), 3u);
  EXPECT_EQ(sel.ops[0], SetOp::kUnion);
  EXPECT_EQ(sel.ops[1], SetOp::kExcept);
}

TEST(ParserTest, UnionAll) {
  auto stmt = ParseStatement("SELECT x FROM a UNION ALL SELECT x FROM b");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(AsSelect(*stmt).ops[0], SetOp::kUnionAll);
}

TEST(ParserTest, ParenthesizedSelectInSetOp) {
  auto stmt = ParseStatement(
      "(SELECT x FROM a) EXCEPT (SELECT x FROM b UNION SELECT x FROM c)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectStmt& sel = AsSelect(*stmt);
  ASSERT_EQ(sel.cores.size(), 2u);
  EXPECT_NE(sel.cores[0]->sub_select, nullptr);
  EXPECT_NE(sel.cores[1]->sub_select, nullptr);
  EXPECT_EQ(sel.cores[1]->sub_select->cores.size(), 2u);
}

TEST(ParserTest, OrderByAndLimit) {
  auto stmt = ParseStatement(
      "SELECT a, b FROM t ORDER BY a DESC, 2 ASC LIMIT 10");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectStmt& sel = AsSelect(*stmt);
  ASSERT_EQ(sel.order_by.size(), 2u);
  EXPECT_EQ(sel.order_by[0].column, "a");
  EXPECT_FALSE(sel.order_by[0].ascending);
  EXPECT_EQ(sel.order_by[1].column, "2");
  EXPECT_TRUE(sel.order_by[1].ascending);
  ASSERT_TRUE(sel.limit.has_value());
  EXPECT_EQ(*sel.limit, 10u);
}

TEST(ParserTest, ScriptWithSemicolons) {
  auto stmts = ParseScript(
      "CREATE TABLE t (x INT); INSERT INTO t VALUES (1); SELECT * FROM t;");
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
  EXPECT_EQ(stmts->size(), 3u);
}

// ---------------------------------------------------------------------------
// Parser: errors
// ---------------------------------------------------------------------------

TEST(ParserTest, ErrorsAreDiagnosed) {
  EXPECT_FALSE(ParseStatement("SELECT FROM t").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM").ok());
  EXPECT_FALSE(ParseStatement("CREATE TABLE t (x BOGUS)").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO t").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM t WHERE a =").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(ParseStatement("DELETE t").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM t extra garbage").ok());
}

TEST(ParserTest, SingleStatementRejectsMultiple) {
  EXPECT_FALSE(ParseStatement("SELECT * FROM t; SELECT * FROM u").ok());
}

TEST(ParserTest, ExprToStringRoundTrips) {
  auto stmt = ParseStatement(
      "SELECT * FROM t WHERE a.x = 'v' AND (b.y < 3 OR b.y IN (1, 2))");
  ASSERT_TRUE(stmt.ok());
  std::string rendered = AsSelect(*stmt).cores[0]->where->ToString();
  EXPECT_NE(rendered.find("a.x = 'v'"), std::string::npos);
  EXPECT_NE(rendered.find("b.y IN (1, 2)"), std::string::npos);
}

}  // namespace
}  // namespace dkb::sql
