// Multi-threaded stress tests for the shared observability components: the
// FlightRecorder ring (concurrent recording sessions vs sys.query_log
// readers across ring eviction) and the QueryCache (mixed lookups, inserts,
// and invalidation). Intended to run under ThreadSanitizer in CI; the
// assertions are deliberately about invariants that survive any
// interleaving, not about specific schedules.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "testbed/flight_recorder.h"
#include "testbed/query_cache.h"
#include "testbed/session.h"
#include "testbed/testbed.h"
#include "workload/queries.h"

namespace dkb::testbed {
namespace {

// ---------------------------------------------------------------------------
// FlightRecorder hammer: writers push entries through a tiny ring (so every
// record evicts) while readers snapshot it and a sys.query_log reader runs
// real SQL against the live testbed recorder.
// ---------------------------------------------------------------------------

TEST(ConcurrencyStressTest, FlightRecorderWritersVsSnapshotReaders) {
  constexpr int kWriters = 4;
  constexpr int kEntriesPerWriter = 400;
  FlightRecorder recorder(/*capacity=*/8);  // tiny: every Record evicts

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, w] {
      for (int i = 0; i < kEntriesPerWriter; ++i) {
        QueryLogEntry entry;
        entry.query_id = recorder.NextQueryId();
        entry.session_id = w + 1;
        entry.query = "hammer(" + std::to_string(i) + ")";
        entry.total_us = i;
        recorder.Record(std::move(entry));
      }
    });
  }

  // Concurrent readers: snapshots must always be internally consistent.
  // The bound is the resizer's maximum (the live capacity() can shrink
  // between our Snapshot and the comparison), and ids are distinct and in
  // range but NOT necessarily sorted — writers may record out of id order.
  static constexpr size_t kMaxCapacity = 16;
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&recorder, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<QueryLogEntry> snap = recorder.Snapshot();
        EXPECT_LE(snap.size(), kMaxCapacity);
        std::set<int64_t> ids;
        for (const QueryLogEntry& entry : snap) {
          EXPECT_GT(entry.query_id, 0);
          EXPECT_LE(entry.query_id,
                    static_cast<int64_t>(kWriters) * kEntriesPerWriter);
          ids.insert(entry.query_id);
        }
        EXPECT_EQ(ids.size(), snap.size());  // every id appears once
      }
    });
  }
  // One thread resizes the ring while everyone else runs, crossing the
  // eviction path from both ends.
  std::thread resizer([&recorder, &stop] {
    size_t cap = 1;
    while (!stop.load(std::memory_order_acquire)) {
      recorder.SetCapacity(cap);
      cap = cap % kMaxCapacity + 1;
    }
  });

  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  resizer.join();

  std::vector<QueryLogEntry> final_snap = recorder.Snapshot();
  EXPECT_LE(final_snap.size(), recorder.capacity());
  EXPECT_FALSE(final_snap.empty());
}

TEST(ConcurrencyStressTest, QueryLogReadersDuringConcurrentSessionQueries) {
  auto tb = Testbed::Create();
  ASSERT_TRUE(tb.ok()) << tb.status().ToString();
  Testbed& testbed = **tb;
  // Keep the ring small so session queries continuously evict while the
  // sys.query_log scan walks a snapshot of it.
  testbed.recorder().SetCapacity(4);
  ASSERT_TRUE(testbed
                  .Consult(workload::AncestorRules() +
                           "parent(john, mary).\n"
                           "parent(mary, sue).\n"
                           "parent(sue, tim).\n")
                  .ok());

  constexpr int kSessions = 3;
  constexpr int kQueriesPerSession = 25;
  std::vector<std::unique_ptr<Session>> sessions;
  for (int i = 0; i < kSessions; ++i) {
    auto session = testbed.OpenSession();
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    sessions.push_back(std::move(*session));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    Session* session = sessions[i].get();
    threads.emplace_back([session, &failures] {
      for (int q = 0; q < kQueriesPerSession; ++q) {
        auto outcome = session->Query("ancestor(john, W)");
        if (!outcome.ok() || outcome->result.rows.size() != 3u) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // The sys.query_log view reads the same ring the sessions recorded into.
  auto count = testbed.db().QueryCount("SELECT COUNT(*) FROM sys.query_log");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_GT(*count, 0);
  EXPECT_LE(*count, 4);
}

// ---------------------------------------------------------------------------
// QueryCache: mixed readers and writers with a concurrent invalidator. The
// shared_ptr Lookup contract is the point — a hit obtained just before an
// InvalidateOn/Clear must stay a valid program afterwards.
// ---------------------------------------------------------------------------

km::CompiledQuery MakeCompiled(const std::string& marker) {
  km::CompiledQuery compiled;
  compiled.original_query.predicate = marker;
  return compiled;
}

TEST(ConcurrencyStressTest, QueryCacheMixedReadersWritersInvalidation) {
  QueryCache cache;
  constexpr int kKeys = 8;
  constexpr int kOpsPerThread = 500;

  auto key_of = [](int i) { return "k" + std::to_string(i % kKeys); };
  auto dep_of = [](int i) { return "p" + std::to_string(i % kKeys); };

  std::vector<std::thread> threads;
  // Writers keep every key populated.
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&cache, &key_of, &dep_of, w] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int k = i + w;
        cache.Insert(key_of(k), MakeCompiled(dep_of(k)), {dep_of(k)});
      }
    });
  }
  // Readers verify that every hit is a complete, self-consistent program
  // regardless of concurrent invalidation.
  std::atomic<int> bad_hits{0};
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&cache, &key_of, &dep_of, &bad_hits] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::shared_ptr<const km::CompiledQuery> hit = cache.Lookup(key_of(i));
        if (hit != nullptr &&
            hit->original_query.predicate != dep_of(i)) {
          bad_hits.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // The invalidator sweeps dependencies round-robin.
  threads.emplace_back([&cache, &dep_of] {
    for (int i = 0; i < kOpsPerThread; ++i) {
      cache.InvalidateOn({dep_of(i)});
      if (i % 64 == 0) cache.Clear();
    }
  });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(bad_hits.load(), 0);
  const QueryCache::Stats stats = cache.stats();
  EXPECT_GT(stats.hits + stats.misses, 0);
  EXPECT_GE(stats.invalidated, 0);
  EXPECT_LE(cache.size(), static_cast<size_t>(kKeys));
}

}  // namespace
}  // namespace dkb::testbed
