// SQL aggregation: COUNT/SUM/MIN/MAX with and without GROUP BY.

#include <gtest/gtest.h>

#include "rdbms/database.h"

namespace dkb {
namespace {

class AggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteAll(
                      "CREATE TABLE emp (dept VARCHAR, name VARCHAR,"
                      "                  salary INT);"
                      "INSERT INTO emp VALUES"
                      "  ('eng', 'ada', 120), ('eng', 'bob', 100),"
                      "  ('eng', 'cyd', 140), ('ops', 'dan', 80),"
                      "  ('ops', 'eve', 90), ('hr', 'fay', 70)")
                    .ok());
  }

  QueryResult Query(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(*r) : QueryResult{};
  }

  Database db_;
};

TEST_F(AggregateTest, GlobalAggregates) {
  QueryResult r = Query(
      "SELECT COUNT(*), SUM(salary), MIN(salary), MAX(salary),"
      " MIN(name) FROM emp");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value(int64_t{6}));
  EXPECT_EQ(r.rows[0][1], Value(int64_t{600}));
  EXPECT_EQ(r.rows[0][2], Value(int64_t{70}));
  EXPECT_EQ(r.rows[0][3], Value(int64_t{140}));
  EXPECT_EQ(r.rows[0][4], Value("ada"));
  EXPECT_EQ(r.schema.column(0).name, "count");
  EXPECT_EQ(r.schema.column(1).name, "sum_salary");
}

TEST_F(AggregateTest, GroupBy) {
  QueryResult r = Query(
      "SELECT dept, COUNT(*) AS n, SUM(salary) AS total FROM emp "
      "GROUP BY dept ORDER BY dept");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0], Value("eng"));
  EXPECT_EQ(r.rows[0][1], Value(int64_t{3}));
  EXPECT_EQ(r.rows[0][2], Value(int64_t{360}));
  EXPECT_EQ(r.rows[1][0], Value("hr"));
  EXPECT_EQ(r.rows[1][1], Value(int64_t{1}));
  EXPECT_EQ(r.rows[2][0], Value("ops"));
  EXPECT_EQ(r.rows[2][2], Value(int64_t{170}));
  EXPECT_EQ(r.schema.column(1).name, "n");
}

TEST_F(AggregateTest, GroupByWithWhere) {
  QueryResult r = Query(
      "SELECT dept, MAX(salary) FROM emp WHERE salary >= 90 "
      "GROUP BY dept ORDER BY dept");
  ASSERT_EQ(r.rows.size(), 2u);  // hr filtered out entirely
  EXPECT_EQ(r.rows[0][0], Value("eng"));
  EXPECT_EQ(r.rows[1][0], Value("ops"));
  EXPECT_EQ(r.rows[1][1], Value(int64_t{90}));
}

TEST_F(AggregateTest, GroupByOverJoin) {
  ASSERT_TRUE(db_.ExecuteAll(
                    "CREATE TABLE loc (dept VARCHAR, city VARCHAR);"
                    "INSERT INTO loc VALUES ('eng', 'osaka'),"
                    " ('ops', 'lima'), ('hr', 'oslo')")
                  .ok());
  QueryResult r = Query(
      "SELECT loc.city, COUNT(*) FROM emp, loc "
      "WHERE emp.dept = loc.dept GROUP BY loc.city ORDER BY 1");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[1][0], Value("osaka"));
  EXPECT_EQ(r.rows[1][1], Value(int64_t{3}));
}

TEST_F(AggregateTest, EmptyInputGlobalVsGrouped) {
  ASSERT_TRUE(db_.Execute("DELETE FROM emp").ok());
  QueryResult global = Query(
      "SELECT COUNT(*), SUM(salary), MIN(salary) FROM emp");
  ASSERT_EQ(global.rows.size(), 1u);
  EXPECT_EQ(global.rows[0][0], Value(int64_t{0}));
  EXPECT_EQ(global.rows[0][1], Value(int64_t{0}));
  EXPECT_TRUE(global.rows[0][2].is_null());
  QueryResult grouped =
      Query("SELECT dept, COUNT(*) FROM emp GROUP BY dept");
  EXPECT_TRUE(grouped.rows.empty());
}

TEST_F(AggregateTest, CountSkipsNulls) {
  ASSERT_TRUE(
      db_.Execute("INSERT INTO emp VALUES ('eng', NULL, NULL)").ok());
  QueryResult r = Query("SELECT COUNT(*), COUNT(name), COUNT(salary) "
                        "FROM emp");
  EXPECT_EQ(r.rows[0][0], Value(int64_t{7}));
  EXPECT_EQ(r.rows[0][1], Value(int64_t{6}));
  EXPECT_EQ(r.rows[0][2], Value(int64_t{6}));
}

TEST_F(AggregateTest, ErrorsAreDiagnosed) {
  // Non-grouped select item.
  EXPECT_FALSE(db_.Execute("SELECT name, COUNT(*) FROM emp GROUP BY dept")
                   .ok());
  // SUM over a string column.
  EXPECT_FALSE(db_.Execute("SELECT SUM(name) FROM emp").ok());
  // Star with aggregation.
  EXPECT_FALSE(db_.Execute("SELECT *, COUNT(*) FROM emp").ok());
}

TEST_F(AggregateTest, Having) {
  QueryResult r = Query(
      "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept "
      "HAVING n >= 2 ORDER BY dept");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0], Value("eng"));
  EXPECT_EQ(r.rows[1][0], Value("ops"));
}

TEST_F(AggregateTest, HavingOnDefaultAggregateName) {
  QueryResult r = Query(
      "SELECT dept, SUM(salary) FROM emp GROUP BY dept "
      "HAVING sum_salary > 200");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value("eng"));
}

TEST_F(AggregateTest, HavingErrors) {
  // HAVING without aggregation.
  EXPECT_FALSE(db_.Execute("SELECT name FROM emp HAVING name = 'ada'").ok());
  // Unknown output column.
  EXPECT_FALSE(db_.Execute("SELECT dept, COUNT(*) FROM emp GROUP BY dept "
                           "HAVING bogus > 1")
                   .ok());
}

TEST_F(AggregateTest, ExplainShowsAggregate) {
  QueryResult r =
      Query("EXPLAIN SELECT dept, COUNT(*) FROM emp GROUP BY dept");
  std::string plan;
  for (const Tuple& row : r.rows) plan += row[0].as_string() + "\n";
  EXPECT_NE(plan.find("Aggregate"), std::string::npos) << plan;
}

TEST_F(AggregateTest, AggregateFeedsSetOpsAndOrderBy) {
  QueryResult r = Query(
      "SELECT dept, COUNT(*) FROM emp GROUP BY dept "
      "UNION SELECT dept, COUNT(*) FROM emp GROUP BY dept "
      "ORDER BY 2 DESC LIMIT 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value("eng"));
}

}  // namespace
}  // namespace dkb
