// StringDict / interned-Value tests: id stability under concurrent
// interning (the TSan hammer for the lock-free read path), representation
// mixing in comparisons and hashing, SQL-literal rendering, and the
// dkb.common.interner_size gauge.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/interner.h"
#include "common/metrics.h"
#include "common/value.h"

namespace dkb {
namespace {

TEST(StringDictTest, InternIsIdempotent) {
  StringDict dict;
  const uint32_t a = dict.Intern("alpha");
  const uint32_t b = dict.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("alpha"), a);
  EXPECT_EQ(dict.Get(a), "alpha");
  EXPECT_EQ(dict.Get(b), "beta");
  EXPECT_EQ(dict.size(), 2u);
}

TEST(StringDictTest, HashMatchesStdHashOfContent) {
  StringDict dict;
  const uint32_t id = dict.Intern("hash-me");
  EXPECT_EQ(dict.HashOf(id), std::hash<std::string>{}("hash-me"));
}

TEST(StringDictTest, SizeGaugeTracksDistinctStrings) {
  StringDict dict;
  for (int i = 0; i < 5; ++i) dict.Intern("gauge-" + std::to_string(i));
  dict.Intern("gauge-0");  // duplicate: no growth
  EXPECT_EQ(dict.size(), 5u);
  EXPECT_EQ(
      metrics::GlobalMetrics().gauge("dkb.common.interner_size").value(), 5);
}

TEST(StringDictTest, ConcurrentInternYieldsStableIds) {
  // The TSan hammer: many threads intern overlapping string sets while
  // readers resolve ids through the lock-free Get/HashOf path. Every thread
  // must observe one id per distinct string, and every id must resolve to
  // its exact content.
  StringDict dict;
  constexpr int kThreads = 8;
  constexpr int kStrings = 500;
  std::vector<std::vector<uint32_t>> ids(kThreads,
                                         std::vector<uint32_t>(kStrings));
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&dict, &ids, t]() {
      for (int i = 0; i < kStrings; ++i) {
        // Threads walk the shared set in different orders so insert races
        // on every string.
        const int s = (i * 7 + t * 13) % kStrings;
        const std::string str = "s" + std::to_string(s);
        const uint32_t id = dict.Intern(str);
        ids[t][s] = id;
        ASSERT_EQ(dict.Get(id), str);
        ASSERT_EQ(dict.HashOf(id), std::hash<std::string>{}(str));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(dict.size(), static_cast<size_t>(kStrings));
  for (int t = 1; t < kThreads; ++t) {
    for (int s = 0; s < kStrings; ++s) EXPECT_EQ(ids[t][s], ids[0][s]);
  }
}

// ---------------------------------------------------------------------------
// Value representation mixing
// ---------------------------------------------------------------------------

TEST(InternedValueTest, MixedRepresentationEquality) {
  const Value owned("mixed");
  const Value interned = Value::Interned("mixed");
  ASSERT_TRUE(interned.is_interned());
  ASSERT_FALSE(owned.is_interned());
  EXPECT_EQ(owned, interned);
  EXPECT_EQ(interned, owned);
  EXPECT_NE(interned, Value("other"));
  EXPECT_EQ(owned.Hash(), interned.Hash());
}

TEST(InternedValueTest, OrderingMatchesOwnedStrings) {
  const Value a = Value::Interned("apple");
  const Value b("banana");
  EXPECT_LT(a, b);
  EXPECT_FALSE(b < a);
  // Same content never compares less in either direction or representation.
  EXPECT_FALSE(a < Value("apple"));
  EXPECT_FALSE(Value("apple") < a);
  // Type ranks are representation-blind: NULL < int < string.
  EXPECT_LT(Value(), a);
  EXPECT_LT(Value(int64_t{42}), a);
}

TEST(InternedValueTest, RenderingUnchangedByInterning) {
  const Value owned("o'brien");
  Value interned = owned;
  interned.InternInPlace();
  ASSERT_TRUE(interned.is_interned());
  EXPECT_EQ(interned.ToString(), owned.ToString());
  EXPECT_EQ(interned.ToSqlLiteral(), owned.ToSqlLiteral());
  EXPECT_EQ(interned.ToSqlLiteral(), "'o''brien'");
}

TEST(InternedValueTest, InternInPlaceLeavesNonStringsAlone) {
  Value null_v;
  Value int_v(int64_t{9});
  null_v.InternInPlace();
  int_v.InternInPlace();
  EXPECT_FALSE(null_v.is_interned());
  EXPECT_FALSE(int_v.is_interned());
  EXPECT_TRUE(null_v.is_null());
  EXPECT_EQ(int_v.as_int(), 9);
}

TEST(InternedValueTest, SameContentSameGlobalId) {
  const Value a = Value::Interned("stable-id");
  const Value b = Value::Interned("stable-id");
  EXPECT_EQ(a.interned_id(), b.interned_id());
}

}  // namespace
}  // namespace dkb
