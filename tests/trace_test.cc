// Trace spans and the QueryReport span tree: hierarchy, Detach/Adopt
// merging, deterministic program order under parallel LFP, and phase
// timings that account for the query's wall time.

#include "common/trace.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "testbed/testbed.h"

namespace dkb {
namespace {

using testbed::ExplainMode;
using testbed::QueryOptions;
using testbed::QueryOutcome;
using testbed::Testbed;

TEST(TraceSpanTest, BuildsTree) {
  trace::TraceContext ctx("root");
  trace::TraceSpan* a = ctx.root()->AddChild("a");
  trace::TraceSpan* b = ctx.root()->AddChild("b");
  a->AddChild("a1")->End();
  a->Tag("k", std::string("v"));
  a->Tag("n", int64_t{7});
  a->End();
  b->End();
  ctx.root()->End();

  ASSERT_EQ(ctx.root()->children().size(), 2u);
  EXPECT_EQ(ctx.root()->children()[0]->name(), "a");
  EXPECT_EQ(ctx.root()->children()[1]->name(), "b");
  ASSERT_EQ(a->children().size(), 1u);
  EXPECT_EQ(a->children()[0]->name(), "a1");
  ASSERT_EQ(a->tags().size(), 2u);
  EXPECT_EQ(a->tags()[0].key, "k");
  EXPECT_FALSE(a->tags()[0].is_number);
  EXPECT_TRUE(a->tags()[1].is_number);
  EXPECT_GE(a->duration_us(), 0);
  EXPECT_LE(a->start_us(), a->end_us());
}

TEST(TraceSpanTest, SnapshotRebasesOffsetsForGrafting) {
  trace::TraceContext ctx("engine");
  trace::TraceSpan* child = ctx.root()->AddChild("compile");
  child->End();
  ctx.root()->End();

  // A server grafts the engine tree into its own request timeline by
  // passing the enclosing offset; every start/end shifts by that base and
  // structure survives unchanged.
  trace::SpanNode plain = trace::SnapshotSpan(*ctx.root());
  trace::SpanNode shifted = trace::SnapshotSpan(*ctx.root(), 250);
  ASSERT_EQ(shifted.children.size(), plain.children.size());
  EXPECT_EQ(shifted.name, plain.name);
  EXPECT_EQ(shifted.start_us, plain.start_us + 250);
  EXPECT_EQ(shifted.end_us, plain.end_us + 250);
  EXPECT_EQ(shifted.children[0].start_us, plain.children[0].start_us + 250);
  EXPECT_EQ(shifted.children[0].end_us, plain.children[0].end_us + 250);
}

TEST(TraceSpanTest, EndIsIdempotent) {
  trace::TraceContext ctx("root");
  trace::TraceSpan* s = ctx.root()->AddChild("s");
  s->End();
  int64_t first_end = s->end_us();
  s->End();
  EXPECT_EQ(s->end_us(), first_end);
}

TEST(TraceSpanTest, DetachAndAdoptPreservesTimeline) {
  trace::TraceContext ctx("root");
  std::unique_ptr<trace::TraceSpan> detached = ctx.Detach("worker");
  detached->AddChild("inner")->End();
  detached->End();
  ctx.root()->Adopt(std::move(detached));
  ctx.root()->End();
  ASSERT_EQ(ctx.root()->children().size(), 1u);
  const trace::TraceSpan& adopted = *ctx.root()->children()[0];
  EXPECT_EQ(adopted.name(), "worker");
  ASSERT_EQ(adopted.children().size(), 1u);
  // Detached spans share the context's epoch, so offsets are comparable.
  EXPECT_GE(adopted.start_us(), ctx.root()->start_us());
}

TEST(TraceSpanTest, NullParentIsNoOp) {
  EXPECT_EQ(trace::StartSpan(nullptr, "x"), nullptr);
  trace::ScopedSpan scoped(nullptr, "y");
  EXPECT_EQ(scoped.get(), nullptr);
  scoped.Tag("k", int64_t{1});  // must not crash
}

TEST(TraceSpanTest, RenderersProduceAllFormats) {
  trace::TraceContext ctx("query:test");
  trace::TraceSpan* child = ctx.root()->AddChild("compile");
  child->Tag("iter", int64_t{3});
  child->End();
  ctx.root()->End();

  std::string text = ctx.RenderText();
  EXPECT_NE(text.find("query:test"), std::string::npos);
  EXPECT_NE(text.find("compile"), std::string::npos);
  EXPECT_NE(text.find("iter=3"), std::string::npos);

  std::string json = ctx.RenderJson();
  EXPECT_NE(json.find("\"name\": \"compile\""), std::string::npos);
  EXPECT_NE(json.find("\"children\""), std::string::npos);

  std::string chrome = ctx.RenderChromeTrace();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\": \"X\""), std::string::npos);
}

/// A program with `cliques` mutually independent recursive cliques plus a
/// flat collector node — real work for the wavefront scheduler.
Result<std::unique_ptr<Testbed>> MakeMultiClique(int cliques, int chain) {
  DKB_ASSIGN_OR_RETURN(std::unique_ptr<Testbed> tb, Testbed::Create());
  std::string program;
  for (int c = 0; c < cliques; ++c) {
    std::string anc = "anc" + std::to_string(c);
    std::string par = "par" + std::to_string(c);
    program += anc + "(X, Y) :- " + par + "(X, Y).\n";
    program += anc + "(X, Y) :- " + par + "(X, Z), " + anc + "(Z, Y).\n";
    program += "all(X, Y) :- " + anc + "(X, Y).\n";
    for (int i = 0; i < chain; ++i) {
      program += par + "(n" + std::to_string(c) + "_" + std::to_string(i) +
                 ", n" + std::to_string(c) + "_" + std::to_string(i + 1) +
                 ").\n";
    }
  }
  DKB_RETURN_IF_ERROR(tb->Consult(program));
  return tb;
}

/// Names of the children of the query's "execute" span.
std::vector<std::string> ExecuteChildNames(const testbed::QueryReport& r) {
  std::vector<std::string> names;
  EXPECT_NE(r.trace, nullptr);
  const trace::TraceSpan* execute = nullptr;
  for (const auto& child : r.trace->root()->children()) {
    if (child->name() == "execute") execute = child;
  }
  EXPECT_NE(execute, nullptr) << r.trace->RenderText();
  if (execute == nullptr) return names;
  for (const auto& child : execute->children()) {
    names.push_back(child->name());
  }
  return names;
}

TEST(QueryTraceTest, CollectTraceBuildsQueryTree) {
  auto tb_or = MakeMultiClique(2, 6);
  ASSERT_TRUE(tb_or.ok()) << tb_or.status().ToString();
  auto tb = std::move(tb_or).value();
  auto outcome =
      tb->Query("all(X, Y)", QueryOptions::SemiNaive().WithTrace());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const testbed::QueryReport& report = outcome->report;
  ASSERT_NE(report.trace, nullptr);

  // Root covers the whole query; compile and execute are its children.
  const trace::TraceSpan* root = report.trace->root();
  EXPECT_EQ(root->name(), "query:all(X, Y)");
  std::vector<std::string> top;
  for (const auto& child : root->children()) top.push_back(child->name());
  ASSERT_EQ(top.size(), 2u) << report.trace->RenderText();
  EXPECT_EQ(top[0], "compile");
  EXPECT_EQ(top[1], "execute");

  // Compile phases appear in Table 4 order.
  const trace::TraceSpan& compile = *root->children()[0];
  ASSERT_GE(compile.children().size(), 3u);
  EXPECT_EQ(compile.children()[0]->name(), "setup");
  EXPECT_EQ(compile.children()[1]->name(), "extract");

  // Every recursive node span carries per-iteration children with delta
  // tags, and the per-node delta_sizes surface in the report.
  const trace::TraceSpan& execute = *root->children()[1];
  int node_spans = 0;
  for (const auto& child : execute.children()) {
    if (child->name().rfind("node:", 0) != 0) continue;
    ++node_spans;
    if (child->name() == "node:all") continue;  // flat node: no iterations
    EXPECT_GE(child->children().size(), 2u) << child->name();
    for (const auto& iter : child->children()) {
      EXPECT_EQ(iter->name(), "iteration");
    }
  }
  EXPECT_EQ(node_spans, 3);  // anc0, anc1, all
  bool found_deltas = false;
  for (const auto& ns : report.exec.nodes) {
    if (!ns.delta_sizes.empty()) {
      found_deltas = true;
      // Semi-naive on a chain: strictly shrinking tail with final 0 delta.
      EXPECT_EQ(ns.delta_sizes.back(), 0);
      EXPECT_EQ(static_cast<int64_t>(ns.delta_sizes.size()), ns.iterations);
    }
  }
  EXPECT_TRUE(found_deltas);
}

TEST(QueryTraceTest, ParallelLfpTraceIsDeterministicProgramOrder) {
  auto tb_or = MakeMultiClique(4, 8);
  ASSERT_TRUE(tb_or.ok()) << tb_or.status().ToString();
  auto tb = std::move(tb_or).value();

  auto serial = tb->Query("all(X, Y)",
                          QueryOptions::SemiNaive().WithTrace());
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  std::vector<std::string> serial_names = ExecuteChildNames(serial->report);

  // Parallel runs detach per-node spans on pool threads and adopt them in
  // program order: the execute children must match the serial tree exactly,
  // run after run.
  for (int rep = 0; rep < 3; ++rep) {
    auto parallel = tb->Query(
        "all(X, Y)",
        QueryOptions::SemiNaive().WithParallelism(4).WithTrace());
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(ExecuteChildNames(parallel->report), serial_names)
        << parallel->report.trace->RenderText();

    // Per-node stats merge in program order too.
    ASSERT_EQ(parallel->report.exec.nodes.size(),
              serial->report.exec.nodes.size());
    for (size_t i = 0; i < parallel->report.exec.nodes.size(); ++i) {
      EXPECT_EQ(parallel->report.exec.nodes[i].label,
                serial->report.exec.nodes[i].label);
    }
  }
}

TEST(QueryTraceTest, PhaseTimingsAccountForWallTime) {
  auto tb_or = MakeMultiClique(2, 12);
  ASSERT_TRUE(tb_or.ok()) << tb_or.status().ToString();
  auto tb = std::move(tb_or).value();
  auto outcome = tb->Query("all(X, Y)", QueryOptions::SemiNaive());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const testbed::QueryReport& report = outcome->report;

  EXPECT_TRUE(report.executed);
  EXPECT_GT(report.total_us, 0);
  int64_t accounted = report.compile.total_us() + report.exec.t_total_us;
  EXPECT_LE(accounted, report.total_us + report.total_us / 10);
  // Compile + execute cover the query end to end: the unaccounted residue
  // (cache key, plan summary, snapshots) must be within 10% of wall time,
  // with a small absolute floor for scheduler noise on tiny queries.
  int64_t residue = report.total_us - accounted;
  EXPECT_LE(residue, std::max<int64_t>(report.total_us / 10, 1000))
      << "total=" << report.total_us << " accounted=" << accounted;

  // Phases() lists Table 4 then Table 5 names in order.
  std::vector<testbed::PhaseTiming> phases = report.Phases();
  ASSERT_EQ(phases.size(), 13u);
  EXPECT_EQ(phases.front().name, "t_setup");
  EXPECT_EQ(phases[8].name, "t_comp");
  EXPECT_EQ(phases.back().name, "t_final");
}

TEST(QueryTraceTest, TracingOffByDefault) {
  auto tb_or = MakeMultiClique(1, 4);
  ASSERT_TRUE(tb_or.ok()) << tb_or.status().ToString();
  auto tb = std::move(tb_or).value();
  auto outcome = tb->Query("all(X, Y)");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->report.trace, nullptr);
  EXPECT_EQ(outcome->report.ChromeTrace(), "");
}

TEST(QueryTraceTest, ReportJsonAndChromeRender) {
  auto tb_or = MakeMultiClique(2, 4);
  ASSERT_TRUE(tb_or.ok()) << tb_or.status().ToString();
  auto tb = std::move(tb_or).value();
  auto outcome = tb->Query(
      "all(X, Y)",
      QueryOptions::SemiNaive().WithParallelism(2).WithTrace());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  std::string json = outcome->report.ToJson();
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"t_rhs\""), std::string::npos);
  EXPECT_NE(json.find("\"delta_sizes\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
  std::string chrome = outcome->report.ChromeTrace();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
}

}  // namespace
}  // namespace dkb
