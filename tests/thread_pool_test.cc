#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace dkb {
namespace {

TEST(ThreadPoolTest, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 100, [&](size_t i) {
    sum.fetch_add(static_cast<int64_t>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(0, kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingleRanges) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.ParallelFor(7, 8, [&](size_t i) {
    EXPECT_EQ(i, 7u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, ParallelForRangesPartitionsWithoutOverlap) {
  ThreadPool pool(3);
  constexpr size_t kN = 4096;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelForRanges(0, kN, [&](size_t /*slot*/, size_t lo, size_t hi) {
    ASSERT_LE(lo, hi);
    for (size_t i = lo; i < hi; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // The caller participates in chunk claiming, so an inner ParallelFor
  // issued from a worker thread always makes progress even when every
  // helper is busy with the outer loop.
  ThreadPool pool(2);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 8, [&](size_t) {
    pool.ParallelFor(0, 64, [&](size_t j) {
      sum.fetch_add(static_cast<int64_t>(j), std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(sum.load(), 8 * (63 * 64 / 2));
}

TEST(ThreadPoolTest, SubmitRunsTasks) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&]() { done.fetch_add(1, std::memory_order_relaxed); });
  }
  // Drain by running a barrier-ish loop through ParallelFor (which waits
  // for its own chunks) and then polling the counter.
  while (done.load(std::memory_order_relaxed) < 32) {
  }
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolTest, MinChunkRespectsGranularity) {
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(
      0, 1000,
      [&](size_t i) {
        sum.fetch_add(static_cast<int64_t>(i), std::memory_order_relaxed);
      },
      /*min_chunk=*/256);
  EXPECT_EQ(sum.load(), 999 * 1000 / 2);
}

TEST(ThreadPoolTest, GlobalPoolIsSingleton) {
  ThreadPool& a = GlobalThreadPool();
  ThreadPool& b = GlobalThreadPool();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace dkb
