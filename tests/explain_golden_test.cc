// Golden-output tests for EXPLAIN rendering: the plan section of the D/KB
// QueryReport and the SQL EXPLAIN operator tree are compared byte-for-byte,
// so any change to plan rendering shows up here. Timing-bearing sections
// (which vary run to run) are covered structurally, not byte-for-byte.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/str_util.h"
#include "testbed/testbed.h"

namespace dkb {
namespace {

using testbed::ExplainMode;
using testbed::QueryOptions;
using testbed::Testbed;

/// The non-linear same-generation program (the paper's canonical
/// magic-sets workload; mirrors examples/programs/same_generation.dkb).
std::unique_ptr<Testbed> MakeSameGeneration() {
  auto tb_or = Testbed::Create();
  EXPECT_TRUE(tb_or.ok()) << tb_or.status().ToString();
  auto tb = std::move(tb_or).value();
  Status consulted = tb->Consult(
      "sg(X, Y) :- flat(X, Y).\n"
      "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n"
      "up(a, e). up(a, f). up(b, f). up(c, g). up(d, h).\n"
      "flat(e, f). flat(f, g). flat(g, h).\n"
      "down(e, a). down(f, b). down(g, c). down(h, d).\n");
  EXPECT_TRUE(consulted.ok()) << consulted.ToString();
  return tb;
}

/// The deterministic prefix of an EXPLAIN rendering: everything up to and
/// including the "  final:" line (strategy, plan nodes, final select).
/// Lines after it carry timings, which vary run to run.
std::string PlanSection(const std::string& explain_text) {
  std::string out;
  for (const std::string& line : StrSplit(explain_text, '\n')) {
    out += line + "\n";
    if (StartsWith(line, "  final:")) break;
  }
  return out;
}

/// Runs an EXPLAIN (plan-only) query and returns the rendered rows joined
/// by newlines — the text a user of the API sees.
std::string ExplainRows(Testbed* tb, const std::string& goal,
                        const QueryOptions& base) {
  QueryOptions options = base;
  options.explain = ExplainMode::kPlan;
  auto outcome = tb->Query(goal, options);
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  std::string joined;
  for (const Tuple& row : outcome->result.rows) {
    joined += row[0].as_string() + "\n";
  }
  return joined;
}

TEST(ExplainGoldenTest, SemiNaivePlan) {
  auto tb = MakeSameGeneration();
  std::string plan =
      PlanSection(ExplainRows(tb.get(), "sg(a, W)", QueryOptions{}));
  EXPECT_EQ(plan,
            "query: sg(a, W)\n"
            "strategy: semi-naive  magic: off  parallelism: 1  cache: miss\n"
            "plan: 2 relevant rule(s)\n"
            "  node sg [clique] exit=1 rec=1\n"
            "  final: SELECT DISTINCT c1 AS W FROM idb_sg WHERE c0 = 'a'\n");
}

TEST(ExplainGoldenTest, MagicPlanAddsMagicClique) {
  auto tb = MakeSameGeneration();
  std::string plan = PlanSection(
      ExplainRows(tb.get(), "sg(a, W)", QueryOptions::Magic()));
  EXPECT_EQ(plan,
            "query: sg(a, W)\n"
            "strategy: semi-naive  magic: on  parallelism: 1  cache: miss\n"
            "plan: 2 relevant rule(s)\n"
            "  node m_sg__bf [clique] exit=1 rec=1\n"
            "  node sg__bf [clique] exit=1 rec=1\n"
            "  final: SELECT DISTINCT c1 AS W FROM idb_sg__bf WHERE c0 = "
            "'a'\n");
}

TEST(ExplainGoldenTest, PlanModeDoesNotExecute) {
  auto tb = MakeSameGeneration();
  auto outcome = tb->Query(
      "sg(a, W)", QueryOptions{}.WithExplain(ExplainMode::kPlan));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome->report.executed);
  EXPECT_EQ(outcome->report.exec.iterations, 0);
  // No answers — the rows are the rendered plan.
  ASSERT_FALSE(outcome->result.rows.empty());
  EXPECT_EQ(outcome->result.rows[0][0].as_string(), "query: sg(a, W)");
}

TEST(ExplainGoldenTest, AnalyzeReportsIterationDeltas) {
  auto tb = MakeSameGeneration();
  auto outcome = tb->Query(
      "sg(a, W)", QueryOptions{}.WithExplain(ExplainMode::kAnalyze));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->report.executed);
  ASSERT_NE(outcome->report.trace, nullptr);
  std::string joined;
  for (const Tuple& row : outcome->result.rows) {
    joined += row[0].as_string() + "\n";
  }
  // Per-iteration delta cardinalities and per-phase timings are in the
  // rendered report.
  EXPECT_NE(joined.find("deltas=["), std::string::npos) << joined;
  EXPECT_NE(joined.find("iteration"), std::string::npos) << joined;
  EXPECT_NE(joined.find("execute:"), std::string::npos) << joined;
  EXPECT_NE(joined.find("counters:"), std::string::npos) << joined;
}

TEST(ExplainGoldenTest, SqlExplainSelect) {
  Database db;
  ASSERT_TRUE(db.ExecuteAll("CREATE TABLE t (a INT, b VARCHAR);"
                            "INSERT INTO t VALUES (1, 'x');"
                            "INSERT INTO t VALUES (2, 'y');")
                  .ok());
  auto result = db.Execute("EXPLAIN SELECT a FROM t WHERE a = 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::string joined;
  for (const Tuple& row : result->rows) {
    joined += row[0].as_string() + "\n";
  }
  // The predicate is evaluated inside the scan, not a separate Filter node.
  EXPECT_EQ(joined,
            "Project\n"
            "  SeqScan(t)\n");
}

TEST(ExplainGoldenTest, SqlExplainAnalyzeAnnotatesRows) {
  Database db;
  ASSERT_TRUE(db.ExecuteAll("CREATE TABLE t (a INT);"
                            "INSERT INTO t VALUES (1);"
                            "INSERT INTO t VALUES (2);"
                            "INSERT INTO t VALUES (3);")
                  .ok());
  auto result = db.Execute("EXPLAIN ANALYZE SELECT a FROM t");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->rows.empty());
  std::string joined;
  for (const Tuple& row : result->rows) {
    joined += row[0].as_string() + "\n";
  }
  // Every line carries live row counts and timings, and operators that
  // produced rows report their batch counts.
  EXPECT_NE(joined.find("(rows=3, time="), std::string::npos) << joined;
  EXPECT_NE(joined.find(", batches=1, rows/batch=3.0"), std::string::npos)
      << joined;
}

}  // namespace
}  // namespace dkb
