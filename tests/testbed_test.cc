#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "testbed/testbed.h"
#include "workload/data_gen.h"
#include "workload/queries.h"

namespace dkb::testbed {
namespace {

using lfp::LfpStrategy;

std::set<std::string> AnswerSet(const QueryResult& result) {
  std::set<std::string> out;
  for (const Tuple& row : result.rows) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    out.insert(key);
  }
  return out;
}

class TestbedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto tb = Testbed::Create();
    ASSERT_TRUE(tb.ok()) << tb.status().ToString();
    tb_ = std::move(*tb);
  }

  void Consult(const std::string& text) {
    Status s = tb_->Consult(text);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  QueryResult Query(const std::string& goal, QueryOptions options = {}) {
    auto outcome = tb_->Query(goal, options);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    return outcome.ok() ? std::move(outcome->result) : QueryResult{};
  }

  std::unique_ptr<Testbed> tb_;
};

TEST_F(TestbedTest, AncestorOnSmallFamily) {
  Consult(workload::AncestorRules() +
          "parent(john, mary).\n"
          "parent(mary, sue).\n"
          "parent(sue, tim).\n");
  QueryResult r = Query("?- ancestor(john, W).");
  EXPECT_EQ(AnswerSet(r),
            (std::set<std::string>{"mary|", "sue|", "tim|"}));
}

TEST_F(TestbedTest, AncestorBothArgumentsFree) {
  Consult(workload::AncestorRules() +
          "parent(a, b).\n"
          "parent(b, c).\n");
  QueryResult r = Query("?- ancestor(X, Y).");
  EXPECT_EQ(AnswerSet(r),
            (std::set<std::string>{"a|b|", "b|c|", "a|c|"}));
}

TEST_F(TestbedTest, BooleanQueryCountsWitnesses) {
  Consult(workload::AncestorRules() + "parent(a, b).\nparent(b, c).\n");
  QueryResult yes = Query("?- ancestor(a, c).");
  ASSERT_EQ(yes.rows.size(), 1u);
  EXPECT_EQ(yes.rows[0][0], Value(static_cast<int64_t>(1)));
  QueryResult no = Query("?- ancestor(c, a).");
  EXPECT_EQ(no.rows[0][0], Value(static_cast<int64_t>(0)));
}

TEST_F(TestbedTest, RepeatedQueryVariable) {
  Consult("cyc(X, Y) :- e(X, Y).\n"
          "cyc(X, Y) :- e(X, Z), cyc(Z, Y).\n"
          "e(a, b).\ne(b, a).\ne(b, c).\n");
  // Nodes on a cycle: cyc(X, X).
  QueryResult r = Query("?- cyc(X, X).");
  EXPECT_EQ(AnswerSet(r), (std::set<std::string>{"a|", "b|"}));
}

TEST_F(TestbedTest, QueryOverBasePredicateDirectly) {
  Consult("parent(a, b).\nparent(a, c).\n");
  QueryResult r = Query("?- parent(a, X).");
  EXPECT_EQ(AnswerSet(r), (std::set<std::string>{"b|", "c|"}));
}

TEST_F(TestbedTest, StrategiesAgreeOnTree) {
  auto tree = workload::MakeFullBinaryTrees(1, 6);  // 63 nodes
  Consult(workload::AncestorRules());
  ASSERT_TRUE(tb_->DefineBase("parent", {DataType::kVarchar,
                                         DataType::kVarchar})
                  .ok());
  ASSERT_TRUE(tb_->AddFacts("parent", tree.ToTuples()).ok());

  QueryOptions semi = QueryOptions::SemiNaive();
  QueryOptions naive = QueryOptions::Naive();
  QueryOptions native =
      QueryOptions::SemiNaive().WithStrategy(LfpStrategy::kNative);

  QueryResult a = Query("?- ancestor('t0_0', W).", semi);
  QueryResult b = Query("?- ancestor('t0_0', W).", naive);
  QueryResult c = Query("?- ancestor('t0_0', W).", native);
  EXPECT_EQ(a.rows.size(), 62u);  // all descendants of the root
  EXPECT_EQ(AnswerSet(a), AnswerSet(b));
  EXPECT_EQ(AnswerSet(a), AnswerSet(c));
}

TEST_F(TestbedTest, MagicAgreesWithUnoptimized) {
  auto tree = workload::MakeFullBinaryTrees(1, 6);
  Consult(workload::AncestorRules());
  ASSERT_TRUE(tb_->DefineBase("parent",
                              {DataType::kVarchar, DataType::kVarchar})
                  .ok());
  ASSERT_TRUE(tb_->AddFacts("parent", tree.ToTuples()).ok());

  for (auto strategy : {LfpStrategy::kSemiNaive, LfpStrategy::kNaive,
                        LfpStrategy::kNative}) {
    QueryOptions plain = QueryOptions::SemiNaive().WithStrategy(strategy);
    QueryOptions magic = QueryOptions::Magic().WithStrategy(strategy);
    // Query rooted at an interior node: magic restricts to the subtree.
    QueryResult p = Query("?- ancestor('t0_1', W).", plain);
    QueryResult m = Query("?- ancestor('t0_1', W).", magic);
    EXPECT_EQ(AnswerSet(p), AnswerSet(m))
        << "strategy " << lfp::StrategyName(strategy);
    EXPECT_EQ(p.rows.size(), 30u);  // subtree of depth 5 minus its root
  }
}

TEST_F(TestbedTest, MagicTouchesOnlyRelevantFacts) {
  auto tree = workload::MakeFullBinaryTrees(1, 8);  // 255 nodes
  Consult(workload::AncestorRules());
  ASSERT_TRUE(tb_->DefineBase("parent",
                              {DataType::kVarchar, DataType::kVarchar})
                  .ok());
  ASSERT_TRUE(tb_->AddFacts("parent", tree.ToTuples()).ok());

  // Deep subtree: few relevant facts.
  QueryOptions magic = QueryOptions::Magic();
  auto outcome = tb_->Query("?- ancestor('t0_120', W).", magic);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->result.rows.size(), 2u);  // two children, depth 8 leaf-1
  // The magic program evaluates two cliques: magic then modified.
  int cliques = 0;
  for (const auto& ns : outcome->report.exec.nodes) {
    if (ns.is_clique) ++cliques;
  }
  EXPECT_EQ(cliques, 2);
}

TEST_F(TestbedTest, SameGeneration) {
  Consult(workload::SameGenerationRules() +
          "up(a, p1).\nup(b, p2).\n"
          "up(p1, g).\nup(p2, g).\n"
          "flat(g, g).\n"
          "down(g, p1).\ndown(g, p2).\n"
          "down(p1, a).\ndown(p2, b).\n");
  QueryResult r = Query("?- sg(a, Y).");
  // a is same-generation with a and b (via grandparent g) .
  EXPECT_EQ(AnswerSet(r), (std::set<std::string>{"a|", "b|"}));
  // And with magic:
  QueryOptions magic = QueryOptions::Magic();
  QueryResult m = Query("?- sg(a, Y).", magic);
  EXPECT_EQ(AnswerSet(m), AnswerSet(r));
}

TEST_F(TestbedTest, MutuallyRecursivePredicates) {
  // even/odd distance from a start node along a list.
  Consult(
      "even(X, Y) :- edge(X, Y2), odd(Y2, Y).\n"
      "even(X, X2) :- eq(X, X2).\n"
      "odd(X, Y) :- edge(X, Y).\n"
      "odd(X, Y) :- edge(X, Z), even(Z, Y).\n"
      "eq(n0, n0).\neq(n1, n1).\neq(n2, n2).\neq(n3, n3).\n"
      "edge(n0, n1).\nedge(n1, n2).\nedge(n2, n3).\n");
  QueryResult odd = Query("?- odd(n0, Y).");
  EXPECT_EQ(AnswerSet(odd), (std::set<std::string>{"n1|", "n3|"}));
  QueryResult even = Query("?- even(n0, Y).");
  EXPECT_EQ(AnswerSet(even), (std::set<std::string>{"n0|", "n2|"}));
}

TEST_F(TestbedTest, NonLinearAncestorAgreesWithLinear) {
  auto data = workload::MakeLists(2, 20);
  for (const char* rules :
       {"anc2(X,Y) :- parent(X,Y).\nanc2(X,Y) :- anc2(X,Z), anc2(Z,Y).\n"}) {
    Consult(rules);
  }
  Consult(workload::AncestorRules());
  ASSERT_TRUE(
      tb_->DefineBase("parent", {DataType::kVarchar, DataType::kVarchar})
          .ok());
  ASSERT_TRUE(tb_->AddFacts("parent", data.ToTuples()).ok());
  for (auto strategy :
       {LfpStrategy::kSemiNaive, LfpStrategy::kNaive, LfpStrategy::kNative}) {
    QueryOptions opts = QueryOptions::SemiNaive().WithStrategy(strategy);
    QueryResult linear = Query("?- ancestor('l0_0', W).", opts);
    QueryResult quad = Query("?- anc2('l0_0', W).", opts);
    EXPECT_EQ(AnswerSet(linear), AnswerSet(quad))
        << lfp::StrategyName(strategy);
    EXPECT_EQ(linear.rows.size(), 19u);
  }
}

TEST_F(TestbedTest, CyclicDataTerminates) {
  Consult(workload::AncestorRules() +
          "parent(a, b).\nparent(b, c).\nparent(c, a).\n");
  for (auto strategy :
       {LfpStrategy::kSemiNaive, LfpStrategy::kNaive, LfpStrategy::kNative}) {
    QueryOptions opts = QueryOptions::SemiNaive().WithStrategy(strategy);
    QueryResult r = Query("?- ancestor(a, W).", opts);
    EXPECT_EQ(AnswerSet(r), (std::set<std::string>{"a|", "b|", "c|"}));
  }
}

TEST_F(TestbedTest, DagData) {
  auto dag = workload::MakeDag(/*levels=*/5, /*width=*/4, /*fan_in=*/2,
                               /*seed=*/42);
  Consult(workload::AncestorRules());
  ASSERT_TRUE(
      tb_->DefineBase("parent", {DataType::kVarchar, DataType::kVarchar})
          .ok());
  ASSERT_TRUE(tb_->AddFacts("parent", dag.ToTuples()).ok());
  QueryOptions magic = QueryOptions::Magic();
  QueryResult plain = Query("?- ancestor('g0_0', W).");
  QueryResult optimized = Query("?- ancestor('g0_0', W).", magic);
  EXPECT_EQ(AnswerSet(plain), AnswerSet(optimized));
  EXPECT_GT(plain.rows.size(), 0u);
}

TEST_F(TestbedTest, WorkspaceAndStoredRulesCombine) {
  // Rule split across workspace and stored DKB: stored rule defines the
  // inner predicate, workspace rule the outer one.
  Consult("inner(X, Y) :- parent(X, Y).\nparent(a, b).\n");
  ASSERT_TRUE(tb_->UpdateStoredDkb().ok());
  tb_->ClearWorkspace();
  Consult("outer(X, Y) :- inner(X, Y).\n");
  QueryResult r = Query("?- outer(a, W).");
  EXPECT_EQ(AnswerSet(r), (std::set<std::string>{"b|"}));
}

TEST_F(TestbedTest, QueryErrors) {
  Consult(workload::AncestorRules() + "parent(a, b).\n");
  // Unknown predicate.
  EXPECT_FALSE(tb_->Query("?- nosuch(X, Y).").ok());
  // Wrong arity.
  EXPECT_FALSE(tb_->Query("?- ancestor(a).").ok());
  // Wrong constant type.
  EXPECT_FALSE(tb_->Query("?- ancestor(17, X).").ok());
}

TEST_F(TestbedTest, UnsafeRuleRejected) {
  Consult("bad(X, Y) :- parent(X, X2).\nparent(a, b).\n");
  auto outcome = tb_->Query("?- bad(a, W).");
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kSemanticError);
}

TEST_F(TestbedTest, TypeConflictRejected) {
  Consult(
      "mix(X, Y) :- s(X, Y).\n"
      "mix(X, Y) :- t(X, Y).\n"
      "s(a, b).\n"
      "t(a, 3).\n");
  auto outcome = tb_->Query("?- mix(a, W).");
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kTypeError);
}

TEST_F(TestbedTest, ConsultRejectsQueries) {
  EXPECT_FALSE(tb_->Consult("p(a).\n?- p(X).").ok());
}

TEST_F(TestbedTest, RepeatedQueriesDoNotLeakTables) {
  Consult(workload::AncestorRules() + "parent(a, b).\nparent(b, c).\n");
  size_t tables_before = tb_->db().catalog().num_tables();
  for (int i = 0; i < 3; ++i) {
    Query("?- ancestor(a, W).");
    QueryOptions magic = QueryOptions::Magic();
    Query("?- ancestor(a, W).", magic);
  }
  EXPECT_EQ(tb_->db().catalog().num_tables(), tables_before);
}

TEST_F(TestbedTest, CompilationStatsPopulated) {
  Consult(workload::AncestorRules() + "parent(a, b).\n");
  auto outcome = tb_->Query("?- ancestor(a, W).");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->report.compile.rules_relevant, 2);
  EXPECT_EQ(outcome->report.compile.preds_relevant, 1);
  EXPECT_GE(outcome->report.compile.total_us(), 0);
  EXPECT_GT(outcome->report.exec.t_total_us, 0);
  EXPECT_GE(outcome->report.exec.iterations, 1);
}

TEST_F(TestbedTest, ConstantInRuleBody) {
  Consult(
      "royal(X) :- parent(king, X).\n"
      "parent(king, will).\nparent(king, harry).\nparent(will, george).\n");
  QueryResult r = Query("?- royal(X).");
  EXPECT_EQ(AnswerSet(r), (std::set<std::string>{"will|", "harry|"}));
}

TEST_F(TestbedTest, ConstantInRuleHead) {
  Consult(
      "labeled(crown, X) :- parent(king, X).\n"
      "parent(king, will).\n");
  QueryResult r = Query("?- labeled(L, X).");
  EXPECT_EQ(AnswerSet(r), (std::set<std::string>{"crown|will|"}));
}

TEST_F(TestbedTest, IntegerColumns) {
  Consult(
      "bigedge(X, Y) :- weight(X, Y, W2), big(W2).\n"
      "big(10).\nbig(20).\n"
      "weight(1, 2, 10).\nweight(2, 3, 5).\nweight(3, 4, 20).\n");
  QueryResult r = Query("?- bigedge(X, Y).");
  EXPECT_EQ(AnswerSet(r), (std::set<std::string>{"1|2|", "3|4|"}));
}

}  // namespace
}  // namespace dkb::testbed
