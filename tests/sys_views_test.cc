// sys.* system views: schema goldens, answering through the ordinary SQL
// path (projections, WHERE, joins), flight-recorder ring semantics, the
// slow-query log, and read-only enforcement.

#include "testbed/sys_views.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "testbed/session.h"
#include "testbed/testbed.h"

namespace dkb::testbed {
namespace {

constexpr char kAncestorProgram[] = R"(
par(a, b).
par(b, c).
par(c, d).
par(d, e).
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
)";

std::unique_ptr<Testbed> MakeTestbed(
    TestbedOptions options = TestbedOptions{}) {
  auto tb = Testbed::Create(options);
  EXPECT_TRUE(tb.ok()) << tb.status().ToString();
  Status consulted = (*tb)->Consult(kAncestorProgram);
  EXPECT_TRUE(consulted.ok()) << consulted.ToString();
  return std::move(*tb);
}

Result<QueryResult> Sql(Testbed* tb, const std::string& sql) {
  return tb->db().Execute(sql);
}

TEST(SysViewsTest, SchemasMatchTheGolden) {
  // Pinned per view: name plus ordered column list. A change here is a
  // user-visible break of the observability surface — update deliberately.
  struct Golden {
    const char* view;
    std::vector<const char*> columns;
  };
  const std::vector<Golden> goldens = {
      {"sys.query_log",
       {"query_id", "session_id", "ts_us", "query", "strategy", "magic",
        "from_cache", "executed", "rows_out", "iterations", "total_us",
        "t_setup_us", "t_extract_us", "t_read_us", "t_analyze_us",
        "t_opt_us", "t_eol_us", "t_sem_us", "t_gen_us", "t_comp_us",
        "t_temp_us", "t_rhs_us", "t_term_us", "t_final_us", "batches",
        "shards", "bytes_sent", "bytes_received", "trace"}},
      {"sys.lfp_iterations",
       {"query_id", "node", "is_clique", "iter", "delta_rows"}},
      {"sys.metrics", {"name", "kind", "value", "sum", "max", "p50", "p99"}},
      {"sys.sessions",
       {"session_id", "epoch", "testbed_epoch", "snapshot_age", "queries"}},
      {"sys.shards",
       {"name", "kind", "shard", "rows", "bytes", "morsels", "scan_batches"}},
      {"sys.connections",
       {"connection_id", "peer", "session_id", "frames_received", "bytes_in",
        "bytes_out", "queries", "requests", "errors", "age_us"}},
      {"sys.server", {"name", "kind", "value", "sum", "max", "p50", "p99"}},
      {"sys.settings", {"name", "value"}},
      {"sys.wal",
       {"enabled", "path", "last_lsn", "appends", "fsyncs", "fsync",
        "group_commit"}},
      {"sys.checkpoints", {"path", "last_lsn", "epoch"}},
  };

  auto tb = MakeTestbed();
  const auto& defs = SystemViewDefs();
  ASSERT_EQ(defs.size(), goldens.size());
  for (size_t v = 0; v < goldens.size(); ++v) {
    EXPECT_EQ(defs[v].name, goldens[v].view);
    // The declared schema and the schema a SELECT * actually answers with
    // must both match the golden.
    auto result = Sql(tb.get(), std::string("SELECT * FROM ") +
                                    goldens[v].view);
    ASSERT_TRUE(result.ok()) << goldens[v].view << ": "
                             << result.status().ToString();
    ASSERT_EQ(result->schema.num_columns(), goldens[v].columns.size())
        << goldens[v].view;
    for (size_t c = 0; c < goldens[v].columns.size(); ++c) {
      EXPECT_EQ(defs[v].schema.column(c).name, goldens[v].columns[c])
          << goldens[v].view;
      EXPECT_EQ(result->schema.column(c).name, goldens[v].columns[c])
          << goldens[v].view;
      EXPECT_EQ(result->schema.column(c).type, defs[v].schema.column(c).type)
          << goldens[v].view << "." << goldens[v].columns[c];
    }
  }
}

TEST(SysViewsTest, ServerViewIsEmptyWithoutANetworkServer) {
  // sys.server surfaces the wire server's request-lifecycle stats; a bare
  // in-process testbed has none, and the view answers (not errors) empty.
  auto tb = MakeTestbed();
  auto rows = Sql(tb.get(), "SELECT * FROM sys.server");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_TRUE(rows->rows.empty());
}

TEST(SysViewsTest, QueryLogRecordsCompletedQueries) {
  auto tb = MakeTestbed();
  ASSERT_TRUE(tb->Query("anc(a, X)").ok());
  ASSERT_TRUE(tb->Query("anc(b, X)").ok());

  auto rows = Sql(tb.get(),
                  "SELECT query_id, query, executed, rows_out, session_id "
                  "FROM sys.query_log");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 2u);
  EXPECT_EQ(rows->rows[0][0].as_int(), 1);
  EXPECT_EQ(rows->rows[0][1].as_string(), "anc(a, X)");
  EXPECT_EQ(rows->rows[0][2].as_int(), 1);  // executed
  EXPECT_EQ(rows->rows[0][3].as_int(), 4);  // anc(a, ·) reaches b, c, d, e
  EXPECT_EQ(rows->rows[0][4].as_int(), 0);  // testbed itself = session 0
  EXPECT_EQ(rows->rows[1][0].as_int(), 2);
  EXPECT_EQ(rows->rows[1][1].as_string(), "anc(b, X)");
}

TEST(SysViewsTest, QueryLogAnswersWherePredicates) {
  auto tb = MakeTestbed();
  ASSERT_TRUE(tb->Query("anc(a, X)").ok());
  ASSERT_TRUE(tb->Query("anc(b, X)", QueryOptions::Magic()).ok());

  auto rows = Sql(tb.get(),
                  "SELECT query FROM sys.query_log WHERE magic = 1");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0].as_string(), "anc(b, X)");
}

TEST(SysViewsTest, LfpIterationsJoinToQueryLog) {
  auto tb = MakeTestbed();
  auto outcome = tb->Query("anc(a, X)");
  ASSERT_TRUE(outcome.ok());
  ASSERT_GT(outcome->report.exec.iterations, 1);

  // The satellite join: per-iteration deltas keyed back to the query text
  // through sys.query_log, all through the ordinary SQL path.
  auto rows = Sql(tb.get(),
                  "SELECT q.query, l.iter, l.delta_rows "
                  "FROM sys.lfp_iterations l, sys.query_log q "
                  "WHERE l.query_id = q.query_id AND l.is_clique = 1");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(static_cast<int64_t>(rows->rows.size()),
            outcome->report.exec.iterations);
  // The view is a faithful flattening of the report: one row per recorded
  // iteration of the clique node, deltas matching NodeStats::delta_sizes.
  const lfp::NodeStats* clique = nullptr;
  for (const auto& node : outcome->report.exec.nodes) {
    if (node.is_clique) clique = &node;
  }
  ASSERT_NE(clique, nullptr);
  ASSERT_EQ(rows->rows.size(), clique->delta_sizes.size());
  for (size_t i = 0; i < rows->rows.size(); ++i) {
    EXPECT_EQ(rows->rows[i][0].as_string(), "anc(a, X)");
    EXPECT_EQ(rows->rows[i][1].as_int(), static_cast<int64_t>(i) + 1);
    EXPECT_EQ(rows->rows[i][2].as_int(), clique->delta_sizes[i]);
  }
  // The fixpoint signature of the chain: strictly shrinking deltas ending
  // in the empty round that proves termination.
  EXPECT_EQ(rows->rows.back()[2].as_int(), 0);
}

TEST(SysViewsTest, DottedNamesResolveByBaseNameQualifier) {
  auto tb = MakeTestbed();
  ASSERT_TRUE(tb->Query("anc(a, X)").ok());
  auto rows = Sql(tb.get(),
                  "SELECT query_log.query_id FROM sys.query_log "
                  "WHERE query_log.executed = 1");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 1u);
}

TEST(SysViewsTest, RingBufferEvictsOldestQueries) {
  auto tb = MakeTestbed(TestbedOptions{}.WithFlightRecorderCapacity(4));
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(tb->Query("anc(a, X)").ok());
  }
  auto rows = Sql(tb.get(), "SELECT query_id FROM sys.query_log");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 4u);  // capacity K after K+3 queries
  EXPECT_EQ(rows->rows[0][0].as_int(), 4);  // 1..3 evicted, oldest first
  EXPECT_EQ(rows->rows[3][0].as_int(), 7);
}

TEST(SysViewsTest, SlowQueryLogEmitsOneRecordPerSlowQuery) {
  auto tb = MakeTestbed();
  std::vector<std::string> records;
  SlowQueryLogOptions slow;
  slow.threshold_us = 0;  // every real query takes > 0 us
  slow.sink = [&records](const std::string& r) { records.push_back(r); };
  tb->recorder().SetSlowQueryLog(slow);

  ASSERT_TRUE(tb->Query("anc(a, X)").ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_NE(records[0].find("[dkb slow query]"), std::string::npos);
  EXPECT_NE(records[0].find("query=\"anc(a, X)\""), std::string::npos);

  // Raising the threshold silences the log again.
  slow.threshold_us = int64_t{1} << 40;
  tb->recorder().SetSlowQueryLog(slow);
  ASSERT_TRUE(tb->Query("anc(a, X)").ok());
  EXPECT_EQ(records.size(), 1u);
}

TEST(SysViewsTest, ViewsRejectAllWrites) {
  auto tb = MakeTestbed();
  const std::vector<std::string> writes = {
      "INSERT INTO sys.query_log VALUES (1)",
      "DELETE FROM sys.query_log",
      "DROP TABLE sys.query_log",
      "CREATE TABLE sys.mine (x INTEGER)",
      "CREATE INDEX idx ON sys.query_log (query_id)",
  };
  for (const std::string& sql : writes) {
    auto result = Sql(tb.get(), sql);
    EXPECT_FALSE(result.ok()) << sql;
  }
  // The views still answer afterwards.
  EXPECT_TRUE(Sql(tb.get(), "SELECT * FROM sys.settings").ok());
}

TEST(SysViewsTest, MetricsViewSeesQueryCounters) {
  metrics::ScopedMetricsReset scoped;
  auto tb = MakeTestbed();
  ASSERT_TRUE(tb->Query("anc(a, X)").ok());
  ASSERT_TRUE(tb->Query("anc(a, X)").ok());

  auto rows = Sql(tb.get(),
                  "SELECT kind, value FROM sys.metrics "
                  "WHERE name = 'dkb.query.count'");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0].as_string(), "counter");
  EXPECT_EQ(rows->rows[0][1].as_int(), 2);

  auto hist = Sql(tb.get(),
                  "SELECT value, sum, p50, p99 FROM sys.metrics "
                  "WHERE name = 'dkb.query.total_us'");
  ASSERT_TRUE(hist.ok()) << hist.status().ToString();
  ASSERT_EQ(hist->rows.size(), 1u);
  EXPECT_EQ(hist->rows[0][0].as_int(), 2);       // two observations
  EXPECT_GT(hist->rows[0][1].as_int(), 0);       // nonzero total time
  EXPECT_LE(hist->rows[0][2].as_int(), hist->rows[0][3].as_int());
}

TEST(SysViewsTest, SessionsViewTracksOpenSessions) {
  auto tb = MakeTestbed();
  auto empty = Sql(tb.get(), "SELECT * FROM sys.sessions");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->rows.empty());

  auto s1 = tb->OpenSession();
  auto s2 = tb->OpenSession();
  ASSERT_TRUE(s1.ok() && s2.ok());
  ASSERT_TRUE((*s1)->Query("anc(a, X)").ok());

  auto rows = Sql(tb.get(),
                  "SELECT session_id, snapshot_age, queries "
                  "FROM sys.sessions");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 2u);
  EXPECT_EQ(rows->rows[0][0].as_int(), (*s1)->id());
  EXPECT_EQ(rows->rows[0][1].as_int(), 0);  // fresh snapshot
  EXPECT_EQ(rows->rows[0][2].as_int(), 1);
  EXPECT_EQ(rows->rows[1][0].as_int(), (*s2)->id());
  EXPECT_EQ(rows->rows[1][2].as_int(), 0);

  // A committed write leaves open sessions stale until their next query.
  ASSERT_TRUE(tb->AddFacts("par", {{Value("e"), Value("f")}}).ok());
  auto stale = Sql(tb.get(),
                   "SELECT session_id FROM sys.sessions "
                   "WHERE snapshot_age > 0");
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->rows.size(), 2u);

  // Closed sessions drop out of the view.
  s1->reset();
  s2->reset();
  auto after = Sql(tb.get(), "SELECT * FROM sys.sessions");
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->rows.empty());
}

TEST(SysViewsTest, ConnectionsViewReflectsInstalledSource) {
  auto tb = MakeTestbed();
  // No server attached: the view exists and is empty.
  auto empty = Sql(tb.get(), "SELECT * FROM sys.connections");
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_TRUE(empty->rows.empty());

  // A server installs its registry as the source (here: a stub).
  tb->SetConnectionsSource([]() {
    Testbed::ConnectionInfo c;
    c.connection_id = 7;
    c.peer = "127.0.0.1:50000";
    c.session_id = 3;
    c.frames_received = 12;
    c.bytes_in = 340;
    c.bytes_out = 1200;
    c.queries = 5;
    return std::vector<Testbed::ConnectionInfo>{c};
  });
  auto rows = Sql(tb.get(),
                  "SELECT connection_id, peer, queries FROM sys.connections "
                  "WHERE bytes_out > 1000");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0].as_int(), 7);
  EXPECT_EQ(rows->rows[0][1].as_string(), "127.0.0.1:50000");
  EXPECT_EQ(rows->rows[0][2].as_int(), 5);

  // Server shutdown removes the source; the view empties again.
  tb->SetConnectionsSource(nullptr);
  auto after = Sql(tb.get(), "SELECT * FROM sys.connections");
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->rows.empty());
}

TEST(SysViewsTest, SessionQueriesRecordUnderTheirSessionId) {
  auto tb = MakeTestbed();
  auto session = tb->OpenSession();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->Query("anc(a, X)").ok());

  auto rows = Sql(tb.get(),
                  "SELECT session_id, query FROM sys.query_log "
                  "WHERE session_id > 0");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0].as_int(), (*session)->id());
  EXPECT_EQ(rows->rows[0][1].as_string(), "anc(a, X)");
}

TEST(SysViewsTest, SettingsViewReflectsConfiguration) {
  auto tb = MakeTestbed(TestbedOptions{}
                            .WithFlightRecorderCapacity(32)
                            .WithSlowQueryThreshold(5000, /*json=*/true));
  auto capacity = Sql(tb.get(),
                      "SELECT value FROM sys.settings "
                      "WHERE name = 'flight_recorder_capacity'");
  ASSERT_TRUE(capacity.ok()) << capacity.status().ToString();
  ASSERT_EQ(capacity->rows.size(), 1u);
  EXPECT_EQ(capacity->rows[0][0].as_string(), "32");

  auto threshold = Sql(tb.get(),
                       "SELECT value FROM sys.settings "
                       "WHERE name = 'slow_query_threshold_us'");
  ASSERT_TRUE(threshold.ok());
  ASSERT_EQ(threshold->rows.size(), 1u);
  EXPECT_EQ(threshold->rows[0][0].as_string(), "5000");

  auto format = Sql(tb.get(),
                    "SELECT value FROM sys.settings "
                    "WHERE name = 'slow_query_log_format'");
  ASSERT_TRUE(format.ok());
  ASSERT_EQ(format->rows.size(), 1u);
  EXPECT_EQ(format->rows[0][0].as_string(), "json");
}

TEST(SysViewsTest, ViewsSurviveSessionSaveAndLoad) {
  auto tb = MakeTestbed();
  ASSERT_TRUE(tb->Query("anc(a, X)").ok());
  std::string path = ::testing::TempDir() + "/sys_views_session.dkbsnap";
  ASSERT_TRUE(tb->SaveSession(path).ok());

  auto loaded = Testbed::LoadSession(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // The restored testbed has a fresh recorder but live views.
  auto log = Sql(loaded->get(), "SELECT * FROM sys.query_log");
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_TRUE(log->rows.empty());
  ASSERT_TRUE((*loaded)->Query("anc(a, X)").ok());
  auto after = Sql(loaded->get(), "SELECT query FROM sys.query_log");
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->rows.size(), 1u);
}

TEST(SysViewsTest, ExplainWorksOnSystemViews) {
  auto tb = MakeTestbed();
  auto plan = Sql(tb.get(), "EXPLAIN SELECT * FROM sys.query_log");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_FALSE(plan->rows.empty());
}

TEST(SysViewsTest, ReportCarriesQueryAndSessionIds) {
  auto tb = MakeTestbed();
  auto first = tb->Query("anc(a, X)");
  auto second = tb->Query("anc(b, X)");
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->report.query_id, 1);
  EXPECT_EQ(second->report.query_id, 2);
  EXPECT_EQ(first->report.session_id, 0);
  EXPECT_EQ(first->report.compile.query_id, 1);
  EXPECT_EQ(first->report.exec.query_id, 1);
  std::string json = second->report.ToJson();
  EXPECT_NE(json.find("\"query_id\": 2"), std::string::npos);
}

}  // namespace
}  // namespace dkb::testbed
