#include <gtest/gtest.h>

#include <memory>

#include "catalog/catalog.h"
#include "storage/index.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace dkb {
namespace {

Schema TwoColSchema() {
  return Schema({{"src", DataType::kVarchar}, {"dst", DataType::kVarchar}});
}

Tuple Row(const char* a, const char* b) { return {Value(a), Value(b)}; }

// ---------------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------------

TEST(SchemaTest, FindColumnCaseInsensitive) {
  Schema s = TwoColSchema();
  EXPECT_EQ(s.FindColumn("src").value(), 0u);
  EXPECT_EQ(s.FindColumn("SRC").value(), 0u);
  EXPECT_EQ(s.FindColumn("dst").value(), 1u);
  EXPECT_FALSE(s.FindColumn("nope").has_value());
}

TEST(SchemaTest, ToStringListsColumns) {
  EXPECT_EQ(TwoColSchema().ToString(), "src VARCHAR, dst VARCHAR");
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

TEST(TableTest, InsertAndScan) {
  Table t("parent", TwoColSchema());
  ASSERT_TRUE(t.Insert(Row("a", "b")).ok());
  ASSERT_TRUE(t.Insert(Row("b", "c")).ok());
  EXPECT_EQ(t.num_tuples(), 2u);
  int count = 0;
  t.Scan([&](RowId, const Tuple& row) {
    EXPECT_EQ(row.size(), 2u);
    ++count;
  });
  EXPECT_EQ(count, 2);
}

TEST(TableTest, InsertRejectsWrongArity) {
  Table t("parent", TwoColSchema());
  auto r = t.Insert({Value("a")});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, InsertRejectsWrongType) {
  Table t("parent", TwoColSchema());
  auto r = t.Insert({Value("a"), Value(static_cast<int64_t>(1))});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST(TableTest, NullAllowedInAnyColumn) {
  Table t("parent", TwoColSchema());
  EXPECT_TRUE(t.Insert({Value::Null(), Value("x")}).ok());
}

TEST(TableTest, DeleteTombstones) {
  Table t("parent", TwoColSchema());
  RowId r0 = *t.Insert(Row("a", "b"));
  RowId r1 = *t.Insert(Row("b", "c"));
  EXPECT_TRUE(t.Delete(r0));
  EXPECT_FALSE(t.Delete(r0));  // second delete is a no-op
  EXPECT_EQ(t.num_tuples(), 1u);
  EXPECT_FALSE(t.IsLive(r0));
  EXPECT_TRUE(t.IsLive(r1));
  int count = 0;
  t.Scan([&](RowId, const Tuple&) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(TableTest, ClearEmptiesTableAndIndexes) {
  Table t("parent", TwoColSchema());
  ASSERT_TRUE(
      t.AddIndex(std::make_unique<HashIndex>("ix", std::vector<size_t>{0}))
          .ok());
  t.Insert(Row("a", "b"));
  t.Insert(Row("a", "c"));
  t.Clear();
  EXPECT_EQ(t.num_tuples(), 0u);
  EXPECT_EQ(t.indexes().size(), 1u);
  EXPECT_EQ(t.indexes()[0]->num_entries(), 0u);
  // Index definition survives: new inserts are indexed.
  t.Insert(Row("x", "y"));
  EXPECT_EQ(t.indexes()[0]->num_entries(), 1u);
}

TEST(TableTest, IndexMaintainedOnInsertAndDelete) {
  Table t("parent", TwoColSchema());
  ASSERT_TRUE(
      t.AddIndex(std::make_unique<HashIndex>("ix", std::vector<size_t>{0}))
          .ok());
  RowId r0 = *t.Insert(Row("a", "b"));
  RowId r1 = *t.Insert(Row("a", "c"));
  t.Insert(Row("b", "d"));
  const Index* ix = t.indexes()[0].get();
  std::vector<RowId> hits;
  ix->Probe({Value("a")}, &hits);
  EXPECT_EQ(hits.size(), 2u);
  t.Delete(r0);
  hits.clear();
  ix->Probe({Value("a")}, &hits);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], r1);
}

TEST(TableTest, AddIndexBackfillsExistingRows) {
  Table t("parent", TwoColSchema());
  t.Insert(Row("a", "b"));
  t.Insert(Row("c", "d"));
  ASSERT_TRUE(
      t.AddIndex(std::make_unique<HashIndex>("ix", std::vector<size_t>{1}))
          .ok());
  std::vector<RowId> hits;
  t.indexes()[0]->Probe({Value("d")}, &hits);
  EXPECT_EQ(hits.size(), 1u);
}

TEST(TableTest, DuplicateIndexNameRejected) {
  Table t("parent", TwoColSchema());
  ASSERT_TRUE(
      t.AddIndex(std::make_unique<HashIndex>("ix", std::vector<size_t>{0}))
          .ok());
  auto s =
      t.AddIndex(std::make_unique<HashIndex>("ix", std::vector<size_t>{1}));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(TableTest, FindIndexOnMatchesColumnSet) {
  Table t("r", Schema({{"a", DataType::kInteger},
                       {"b", DataType::kInteger},
                       {"c", DataType::kInteger}}));
  ASSERT_TRUE(
      t.AddIndex(std::make_unique<HashIndex>("ab", std::vector<size_t>{0, 1}))
          .ok());
  EXPECT_NE(t.FindIndexOn({0, 1}), nullptr);
  EXPECT_NE(t.FindIndexOn({1, 0}), nullptr);  // set match
  EXPECT_EQ(t.FindIndexOn({0}), nullptr);
  EXPECT_EQ(t.FindIndexOn({0, 2}), nullptr);
}

// ---------------------------------------------------------------------------
// Indexes
// ---------------------------------------------------------------------------

TEST(IndexTest, HashIndexDuplicates) {
  HashIndex ix("ix", {0});
  ix.Insert({Value("k")}, 1);
  ix.Insert({Value("k")}, 2);
  ix.Insert({Value("j")}, 3);
  std::vector<RowId> hits;
  ix.Probe({Value("k")}, &hits);
  EXPECT_EQ(hits.size(), 2u);
  ix.Erase({Value("k")}, 1);
  hits.clear();
  ix.Probe({Value("k")}, &hits);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 2u);
}

TEST(IndexTest, OrderedIndexRange) {
  OrderedIndex ix("ix", {0});
  for (int64_t i = 0; i < 10; ++i) ix.Insert({Value(i)}, i);
  std::vector<RowId> hits;
  ix.Range({Value(static_cast<int64_t>(3))},
           {Value(static_cast<int64_t>(6))}, &hits);
  EXPECT_EQ(hits.size(), 4u);  // 3,4,5,6
}

TEST(IndexTest, MakeKeyProjectsColumns) {
  HashIndex ix("ix", {2, 0});
  Tuple row = {Value("a"), Value("b"), Value("c")};
  Tuple key = ix.MakeKey(row);
  ASSERT_EQ(key.size(), 2u);
  EXPECT_EQ(key[0], Value("c"));
  EXPECT_EQ(key[1], Value("a"));
}

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

TEST(CatalogTest, CreateGetDrop) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("t", TwoColSchema()).ok());
  EXPECT_TRUE(cat.HasTable("t"));
  EXPECT_TRUE(cat.HasTable("T"));  // case-insensitive
  auto t = cat.GetSource("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->name(), "t");
  ASSERT_TRUE(cat.DropTable("T").ok());
  EXPECT_FALSE(cat.HasTable("t"));
}

TEST(CatalogTest, DuplicateCreateFails) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("t", TwoColSchema()).ok());
  auto r = cat.CreateTable("T", TwoColSchema());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, DropMissingFails) {
  Catalog cat;
  EXPECT_EQ(cat.DropTable("nope").code(), StatusCode::kNotFound);
}

TEST(CatalogTest, CreateIndexValidatesColumns) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("t", TwoColSchema()).ok());
  EXPECT_TRUE(cat.CreateIndex("t", "ix", {"src"}, /*ordered=*/false).ok());
  EXPECT_EQ(cat.CreateIndex("t", "ix2", {"bogus"}, false).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(cat.CreateIndex("missing", "ix3", {"src"}, false).code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, TableNames) {
  Catalog cat;
  cat.CreateTable("a", TwoColSchema());
  cat.CreateTable("b", TwoColSchema());
  auto names = cat.TableNames();
  EXPECT_EQ(names.size(), 2u);
}

}  // namespace
}  // namespace dkb
