#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "rdbms/database.h"

namespace dkb {
namespace {

class PreparedStatementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Exec("CREATE TABLE t (id INTEGER, name VARCHAR)");
    Exec("INSERT INTO t VALUES (1, 'ann'), (2, 'bob'), (3, 'cid')");
  }

  void Exec(const std::string& sql) {
    auto r = db_.Execute(sql);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  Database db_;
};

TEST_F(PreparedStatementTest, BindAndExecuteSelect) {
  auto ps = db_.Prepare("SELECT name FROM t WHERE id = ?");
  ASSERT_TRUE(ps.ok()) << ps.status().ToString();
  EXPECT_TRUE(ps->valid());
  EXPECT_EQ(ps->param_count(), 1u);

  ASSERT_TRUE(ps->Bind(0, Value(int64_t(2))).ok());
  auto r = ps->Execute();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].as_string(), "bob");
}

TEST_F(PreparedStatementTest, RebindAndReexecute) {
  auto ps = db_.Prepare("SELECT COUNT(*) FROM t WHERE id = ?");
  ASSERT_TRUE(ps.ok()) << ps.status().ToString();
  for (int id = 1; id <= 3; ++id) {
    ASSERT_TRUE(ps->Bind(0, Value(int64_t(id))).ok());
    auto r = ps->Execute();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->rows[0][0].as_int(), 1);
  }
  ASSERT_TRUE(ps->Bind(0, Value(int64_t(99))).ok());
  auto r = ps->Execute();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].as_int(), 0);
}

TEST_F(PreparedStatementTest, UnboundParameterIsAnError) {
  auto ps = db_.Prepare("SELECT * FROM t WHERE id = ?");
  ASSERT_TRUE(ps.ok());
  auto r = ps->Execute();
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("not bound"), std::string::npos)
      << r.status().ToString();
}

TEST_F(PreparedStatementTest, ClearBindingsRequiresRebind) {
  auto ps = db_.Prepare("SELECT * FROM t WHERE id = ?");
  ASSERT_TRUE(ps.ok());
  ASSERT_TRUE(ps->Bind(0, Value(int64_t(1))).ok());
  ASSERT_TRUE(ps->Execute().ok());
  ps->ClearBindings();
  EXPECT_FALSE(ps->Execute().ok());
}

TEST_F(PreparedStatementTest, BindIndexOutOfRange) {
  auto ps = db_.Prepare("SELECT * FROM t WHERE id = ?");
  ASSERT_TRUE(ps.ok());
  EXPECT_FALSE(ps->Bind(1, Value(int64_t(1))).ok());
}

TEST_F(PreparedStatementTest, MultipleParametersBindInTextualOrder) {
  auto ps = db_.Prepare("SELECT name FROM t WHERE id >= ? AND id <= ?");
  ASSERT_TRUE(ps.ok()) << ps.status().ToString();
  EXPECT_EQ(ps->param_count(), 2u);
  ASSERT_TRUE(ps->Bind(0, Value(int64_t(2))).ok());
  ASSERT_TRUE(ps->Bind(1, Value(int64_t(3))).ok());
  auto r = ps->Execute();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST_F(PreparedStatementTest, InsertWithParameters) {
  auto ps = db_.Prepare("INSERT INTO t VALUES (?, ?)");
  ASSERT_TRUE(ps.ok()) << ps.status().ToString();
  ASSERT_TRUE(ps->Bind(0, Value(int64_t(4))).ok());
  ASSERT_TRUE(ps->Bind(1, Value("dee")).ok());
  ASSERT_TRUE(ps->Execute().ok());
  ASSERT_TRUE(ps->Bind(0, Value(int64_t(5))).ok());
  ASSERT_TRUE(ps->Bind(1, Value("eli")).ok());
  ASSERT_TRUE(ps->Execute().ok());

  auto n = db_.QueryCount("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 5);
  auto name = db_.QueryScalar("SELECT name FROM t WHERE id = 5");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->as_string(), "eli");
}

TEST_F(PreparedStatementTest, DeleteWithParameter) {
  auto ps = db_.Prepare("DELETE FROM t WHERE id = ?");
  ASSERT_TRUE(ps.ok()) << ps.status().ToString();
  ASSERT_TRUE(ps->Bind(0, Value(int64_t(2))).ok());
  ASSERT_TRUE(ps->Execute().ok());
  auto n = db_.QueryCount("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2);
}

TEST_F(PreparedStatementTest, HandleSurvivesCacheEviction) {
  auto ps = db_.Prepare("SELECT COUNT(*) FROM t WHERE id = ?");
  ASSERT_TRUE(ps.ok());
  // Toggling the statement cache clears the cached parse trees; the handle
  // shares ownership and must keep working.
  db_.set_statement_cache_enabled(false);
  db_.set_statement_cache_enabled(true);
  ASSERT_TRUE(ps->Bind(0, Value(int64_t(1))).ok());
  auto r = ps->Execute();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].as_int(), 1);
}

TEST_F(PreparedStatementTest, PrepareTwiceHitsStatementCache) {
  int64_t before = db_.stats().statement_cache_hits;
  auto a = db_.Prepare("SELECT * FROM t WHERE id = ?");
  auto b = db_.Prepare("SELECT * FROM t WHERE id = ?");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GE(db_.stats().statement_cache_hits, before + 1);
}

TEST_F(PreparedStatementTest, ParamDrivesIndexSelection) {
  // A bound parameter on an indexed column should use the index access
  // path, exactly as a literal would.
  Exec("CREATE TABLE big (k INTEGER, v INTEGER)");
  std::string values;
  for (int i = 0; i < 200; ++i) {
    values += (i ? ", (" : "(") + std::to_string(i) + ", " +
              std::to_string(i * 10) + ")";
  }
  Exec("INSERT INTO big VALUES " + values);
  Exec("CREATE INDEX big_k ON big (k)");

  auto ps = db_.Prepare("SELECT v FROM big WHERE k = ?");
  ASSERT_TRUE(ps.ok()) << ps.status().ToString();
  int64_t probes_before = db_.stats().index_probes;
  ASSERT_TRUE(ps->Bind(0, Value(int64_t(77))).ok());
  auto r = ps->Execute();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].as_int(), 770);
  EXPECT_GT(db_.stats().index_probes, probes_before)
      << "bound parameter did not take the index access path";
}

TEST_F(PreparedStatementTest, InvalidDefaultConstructedHandle) {
  PreparedStatement ps;
  EXPECT_FALSE(ps.valid());
  EXPECT_EQ(ps.param_count(), 0u);
  EXPECT_FALSE(ps.Bind(0, Value(int64_t(1))).ok());
  EXPECT_FALSE(ps.Execute().ok());
}

TEST_F(PreparedStatementTest, ConcurrentReadersShareStatementCache) {
  constexpr int kThreads = 4;
  constexpr int kReps = 50;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kReps; ++i) {
        auto ps = db_.Prepare("SELECT COUNT(*) FROM t WHERE id = ?");
        if (!ps.ok() || !ps->Bind(0, Value(int64_t(1 + (i % 3)))).ok()) {
          ++failures[t];
          continue;
        }
        auto r = ps->Execute();
        if (!r.ok() || r->rows[0][0].as_int() != 1) ++failures[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0);
}

}  // namespace
}  // namespace dkb
