#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "rdbms/snapshot.h"
#include "testbed/testbed.h"
#include "workload/queries.h"

namespace dkb {
namespace {

std::set<std::string> AnswerSet(const QueryResult& result) {
  std::set<std::string> out;
  for (const Tuple& row : result.rows) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    out.insert(key);
  }
  return out;
}

TEST(SnapshotTest, DatabaseRoundTrip) {
  Database db;
  ASSERT_TRUE(db.ExecuteAll(
                    "CREATE TABLE t (x INT, name VARCHAR);"
                    "CREATE INDEX x_ix ON t (x);"
                    "CREATE ORDERED INDEX n_ix ON t (name);"
                    "INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, NULL)")
                  .ok());
  std::string text = SerializeDatabase(db);

  Database restored;
  ASSERT_TRUE(DeserializeDatabase(&restored, text).ok());
  auto rows = restored.QueryRows("SELECT * FROM t ORDER BY x");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0][1], Value("one"));
  EXPECT_TRUE((*rows)[2][1].is_null());
  // Indexes were restored and are usable.
  restored.stats().Reset();
  auto hit = restored.QueryRows("SELECT * FROM t WHERE x = 2");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->size(), 1u);
  EXPECT_EQ(restored.stats().rows_scanned, 0);
  EXPECT_EQ(restored.stats().index_probes, 1);
}

TEST(SnapshotTest, EscapingSurvivesHostileStrings) {
  Database db;
  ASSERT_TRUE(db.ExecuteAll("CREATE TABLE t (s VARCHAR)").ok());
  Table* table = &(*db.catalog().GetSource("t"))->shard(0);
  std::string hostile = "tab\tnewline\nback\\slash END\nROW S";
  table->InsertUnchecked({Value(hostile)});
  Database restored;
  ASSERT_TRUE(DeserializeDatabase(&restored, SerializeDatabase(db)).ok());
  auto rows = restored.QueryRows("SELECT * FROM t");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], Value(hostile));
}

TEST(SnapshotTest, LoadIntoNonEmptyDatabaseFails) {
  Database db;
  ASSERT_TRUE(db.ExecuteAll("CREATE TABLE t (x INT)").ok());
  Database other;
  ASSERT_TRUE(other.ExecuteAll("CREATE TABLE u (y INT)").ok());
  auto status = DeserializeDatabase(&other, SerializeDatabase(db));
  EXPECT_FALSE(status.ok());
}

TEST(SnapshotTest, CorruptSnapshotsRejected) {
  Database db;
  EXPECT_FALSE(DeserializeDatabase(&db, "not a snapshot").ok());
  Database db2;
  EXPECT_FALSE(DeserializeDatabase(&db2, "DKBSNAP 1\nTABLE t\n").ok());
  Database db3;
  EXPECT_FALSE(
      DeserializeDatabase(&db3, "DKBSNAP 1\nROW I1\nEND\n").ok());
}

TEST(SnapshotTest, SessionRoundTripAnswersMatch) {
  std::string path = ::testing::TempDir() + "/dkb_session_snapshot.dkb";

  std::set<std::string> expected;
  {
    auto tb_or = testbed::Testbed::Create();
    ASSERT_TRUE(tb_or.ok());
    auto tb = std::move(*tb_or);
    ASSERT_TRUE(tb->Consult(workload::AncestorRules() +
                            "parent(a, b).\nparent(b, c).\nparent(b, d).\n")
                    .ok());
    // Some rules stored, one left in the workspace.
    ASSERT_TRUE(tb->UpdateStoredDkb().ok());
    tb->ClearWorkspace();
    ASSERT_TRUE(tb->AddRule("kin(X, Y) :- ancestor(X, Y).").ok());
    auto outcome = tb->Query("?- kin(a, W).");
    ASSERT_TRUE(outcome.ok());
    expected = AnswerSet(outcome->result);
    ASSERT_TRUE(tb->SaveSession(path).ok());
  }

  auto restored_or = testbed::Testbed::LoadSession(path);
  ASSERT_TRUE(restored_or.ok()) << restored_or.status().ToString();
  auto restored = std::move(*restored_or);
  // Workspace rule survived.
  EXPECT_EQ(restored->workspace().num_rules(), 1u);
  auto outcome = restored->Query("?- kin(a, W).");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(AnswerSet(outcome->result), expected);
  // The restored session is fully usable: new facts, new commits.
  ASSERT_TRUE(restored->AddFacts("parent", {{Value("d"), Value("e")}}).ok());
  ASSERT_TRUE(restored->UpdateStoredDkb().ok());
  auto after = restored->Query("?- kin(a, W).");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->result.rows.size(), expected.size() + 1);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RestoredStoredDkbKeepsRuleIdsUnique) {
  std::string path = ::testing::TempDir() + "/dkb_ruleid_snapshot.dkb";
  {
    auto tb_or = testbed::Testbed::Create();
    ASSERT_TRUE(tb_or.ok());
    auto tb = std::move(*tb_or);
    ASSERT_TRUE(tb->Consult("p(X,Y) :- e(X,Y).\nq(X,Y) :- e(X,Y).\n"
                            "e(a, b).\n")
                    .ok());
    ASSERT_TRUE(tb->UpdateStoredDkb().ok());
    ASSERT_TRUE(tb->SaveSession(path).ok());
  }
  auto tb_or = testbed::Testbed::LoadSession(path);
  ASSERT_TRUE(tb_or.ok());
  auto tb = std::move(*tb_or);
  tb->ClearWorkspace();
  ASSERT_TRUE(tb->AddRule("r(X,Y) :- e(X,Y).").ok());
  ASSERT_TRUE(tb->UpdateStoredDkb().ok());
  // Three distinct rule ids.
  auto ids = tb->db().QueryRows("SELECT DISTINCT ruleid FROM rulesource");
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->size(), 3u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadMissingFileFails) {
  auto result = testbed::Testbed::LoadSession("/nonexistent/nope.dkb");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace dkb
