#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/value.h"

namespace dkb {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("table x");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "table x");
  EXPECT_EQ(s.ToString(), "NotFound: table x");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kTypeError), "TypeError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kSemanticError), "SemanticError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Internal("boom"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  DKB_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  auto bad = Quarter(6);  // 6/2 = 3, odd
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  Value n;
  Value i(static_cast<int64_t>(7));
  Value s("abc");
  EXPECT_TRUE(n.is_null());
  EXPECT_EQ(n.type(), DataType::kInvalid);
  EXPECT_TRUE(i.is_int());
  EXPECT_EQ(i.as_int(), 7);
  EXPECT_EQ(i.type(), DataType::kInteger);
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(s.as_string(), "abc");
  EXPECT_EQ(s.type(), DataType::kVarchar);
}

TEST(ValueTest, EqualityAndOrdering) {
  EXPECT_EQ(Value(static_cast<int64_t>(3)), Value(static_cast<int64_t>(3)));
  EXPECT_NE(Value(static_cast<int64_t>(3)), Value(static_cast<int64_t>(4)));
  EXPECT_NE(Value(static_cast<int64_t>(3)), Value("3"));
  EXPECT_LT(Value(static_cast<int64_t>(3)), Value(static_cast<int64_t>(4)));
  EXPECT_LT(Value("abc"), Value("abd"));
  // NULL sorts before everything.
  EXPECT_LT(Value::Null(), Value(static_cast<int64_t>(-100)));
  EXPECT_LT(Value(static_cast<int64_t>(100)), Value(""));  // int < string
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, SqlLiteralEscaping) {
  EXPECT_EQ(Value(static_cast<int64_t>(42)).ToSqlLiteral(), "42");
  EXPECT_EQ(Value("plain").ToSqlLiteral(), "'plain'");
  EXPECT_EQ(Value("o'neil").ToSqlLiteral(), "'o''neil'");
  EXPECT_EQ(Value::Null().ToSqlLiteral(), "NULL");
}

TEST(ValueTest, HashConsistentWithEquality) {
  Value a("hello");
  Value b("hello");
  EXPECT_EQ(a.Hash(), b.Hash());
  std::unordered_set<Value, ValueHash> set;
  set.insert(a);
  EXPECT_EQ(set.count(b), 1u);
}

// ---------------------------------------------------------------------------
// String utilities
// ---------------------------------------------------------------------------

TEST(StrUtilTest, Split) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StrUtilTest, Join) {
  EXPECT_EQ(StrJoin({"x", "y"}, ", "), "x, y");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StrUtilTest, CaseFunctions) {
  EXPECT_EQ(AsciiLower("SeLeCt"), "select");
  EXPECT_EQ(AsciiUpper("SeLeCt"), "SELECT");
  EXPECT_TRUE(EqualsIgnoreCase("Ancestor", "ANCESTOR"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

TEST(StrUtilTest, Trim) {
  EXPECT_EQ(StrTrim("  x y \n"), "x y");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
}

TEST(StrUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("magic_anc", "magic_"));
  EXPECT_FALSE(StartsWith("anc", "magic_"));
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

}  // namespace
}  // namespace dkb
