#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "datalog/parser.h"
#include "km/eval_graph.h"
#include "lfp/tc_operator.h"
#include "testbed/testbed.h"
#include "workload/data_gen.h"
#include "workload/queries.h"

namespace dkb::lfp {
namespace {

km::ProgramNode MakeNode(const std::string& rules_text) {
  auto program = datalog::ParseProgram(rules_text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  std::set<std::string> derived;
  for (const auto& rule : program->rules) derived.insert(rule.head.predicate);
  auto order = km::BuildEvaluationOrder(program->rules, derived);
  EXPECT_TRUE(order.ok()) << order.status().ToString();
  km::ProgramNode node;
  const km::EvalNode& en = order->nodes.back();
  node.is_clique = en.kind == km::EvalNode::Kind::kClique;
  if (node.is_clique) {
    node.predicates = en.clique.predicates;
    node.recursive_rules = en.clique.recursive_rules;
    for (const auto& rule : en.clique.exit_rules) {
      node.exit_rules.push_back(km::CompiledRule{rule, ""});
    }
  } else {
    node.predicates = {en.predicate};
    for (const auto& rule : en.rules) {
      node.exit_rules.push_back(km::CompiledRule{rule, ""});
    }
  }
  return node;
}

TEST(TcDetectTest, RightLinearMatches) {
  TcShape shape;
  EXPECT_TRUE(MatchesTransitiveClosure(
      MakeNode("anc(X,Y) :- par(X,Y).\n"
               "anc(X,Y) :- par(X,Z), anc(Z,Y).\n"),
      &shape));
  EXPECT_EQ(shape.predicate, "anc");
  EXPECT_EQ(shape.edge_predicate, "par");
}

TEST(TcDetectTest, LeftLinearMatches) {
  TcShape shape;
  EXPECT_TRUE(MatchesTransitiveClosure(
      MakeNode("anc(X,Y) :- par(X,Y).\n"
               "anc(X,Y) :- anc(X,Z), par(Z,Y).\n"),
      &shape));
}

TEST(TcDetectTest, NonLinearMatches) {
  TcShape shape;
  EXPECT_TRUE(MatchesTransitiveClosure(
      MakeNode("anc(X,Y) :- par(X,Y).\n"
               "anc(X,Y) :- anc(X,Z), anc(Z,Y).\n"),
      &shape));
}

TEST(TcDetectTest, RejectsDifferentEdgeRelations) {
  TcShape shape;
  EXPECT_FALSE(MatchesTransitiveClosure(
      MakeNode("anc(X,Y) :- par(X,Y).\n"
               "anc(X,Y) :- step(X,Z), anc(Z,Y).\n"),
      &shape));
}

TEST(TcDetectTest, RejectsExtraBodyAtoms) {
  TcShape shape;
  EXPECT_FALSE(MatchesTransitiveClosure(
      MakeNode("anc(X,Y) :- par(X,Y).\n"
               "anc(X,Y) :- par(X,Z), anc(Z,Y), ok(Y).\n"),
      &shape));
}

TEST(TcDetectTest, RejectsSameGeneration) {
  TcShape shape;
  EXPECT_FALSE(MatchesTransitiveClosure(
      MakeNode("sg(X,Y) :- flat(X,Y).\n"
               "sg(X,Y) :- up(X,U), sg(U,V), down(V,Y).\n"),
      &shape));
}

TEST(TcDetectTest, RejectsNonRecursiveNode) {
  TcShape shape;
  EXPECT_FALSE(
      MatchesTransitiveClosure(MakeNode("v(X,Y) :- e(X,Y).\n"), &shape));
}

TEST(TcDetectTest, RejectsSwappedHeadVars) {
  TcShape shape;
  EXPECT_FALSE(MatchesTransitiveClosure(
      MakeNode("anc(X,Y) :- par(X,Y).\n"
               "anc(X,Y) :- par(Y,Z), anc(Z,X).\n"),
      &shape));
}

TEST(TcComputeTest, ChainClosure) {
  std::vector<Tuple> edges = {{Value("a"), Value("b")},
                              {Value("b"), Value("c")},
                              {Value("c"), Value("d")}};
  std::vector<Tuple> out;
  ComputeTransitiveClosure(edges, &out);
  EXPECT_EQ(out.size(), 6u);  // ab ac ad bc bd cd
}

TEST(TcComputeTest, CycleClosure) {
  std::vector<Tuple> edges = {{Value("a"), Value("b")},
                              {Value("b"), Value("a")}};
  std::vector<Tuple> out;
  ComputeTransitiveClosure(edges, &out);
  std::set<std::string> pairs;
  for (const Tuple& t : out) {
    pairs.insert(t[0].ToString() + t[1].ToString());
  }
  EXPECT_EQ(pairs, (std::set<std::string>{"ab", "aa", "ba", "bb"}));
}

TEST(TcComputeTest, EmptyEdges) {
  std::vector<Tuple> out;
  ComputeTransitiveClosure({}, &out);
  EXPECT_TRUE(out.empty());
}

// End-to-end: the kNativeTc strategy must agree with the others and flag a
// single pass.
TEST(TcEndToEndTest, AgreesWithGeneralStrategies) {
  auto tb = testbed::Testbed::Create();
  ASSERT_TRUE(tb.ok());
  ASSERT_TRUE((*tb)->Consult(workload::AncestorRules()).ok());
  ASSERT_TRUE((*tb)
                  ->DefineBase("parent",
                               {DataType::kVarchar, DataType::kVarchar})
                  .ok());
  auto dag = workload::MakeDag(6, 4, 2, 123);
  ASSERT_TRUE((*tb)->AddFacts("parent", dag.ToTuples()).ok());

  auto answers = [&](LfpStrategy strategy) {
    testbed::QueryOptions opts =
        testbed::QueryOptions::SemiNaive().WithStrategy(strategy);
    auto outcome = (*tb)->Query("?- ancestor('g0_0', W).", opts);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    std::set<std::string> out;
    if (outcome.ok()) {
      for (const Tuple& row : outcome->result.rows) {
        out.insert(row[0].ToString());
      }
    }
    return out;
  };
  auto reference = answers(LfpStrategy::kSemiNaive);
  EXPECT_EQ(answers(LfpStrategy::kNativeTc), reference);
  EXPECT_GT(reference.size(), 3u);

  // The TC path reports a single pass for the ancestor clique.
  testbed::QueryOptions tc =
      testbed::QueryOptions::SemiNaive().WithStrategy(LfpStrategy::kNativeTc);
  auto outcome = (*tb)->Query("?- ancestor('g0_0', W).", tc);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->report.exec.iterations, 1);
}

TEST(TcEndToEndTest, FallsBackOnNonTcCliques) {
  auto tb = testbed::Testbed::Create();
  ASSERT_TRUE(tb.ok());
  ASSERT_TRUE((*tb)->Consult(workload::SameGenerationRules() +
                             "up(a, g).\nup(b, g).\n"
                             "flat(g, g).\n"
                             "down(g, a).\ndown(g, b).\n")
                  .ok());
  testbed::QueryOptions tc =
      testbed::QueryOptions::SemiNaive().WithStrategy(LfpStrategy::kNativeTc);
  auto outcome = (*tb)->Query("?- sg(a, Y).", tc);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  std::set<std::string> out;
  for (const Tuple& row : outcome->result.rows) out.insert(row[0].ToString());
  EXPECT_EQ(out, (std::set<std::string>{"a", "b"}));
}

TEST(TcEndToEndTest, MagicRewrittenCliqueNotMisdetected) {
  // With magic sets the modified rules carry a guard atom, so the TC
  // operator must not fire; results must still be correct.
  auto tb = testbed::Testbed::Create();
  ASSERT_TRUE(tb.ok());
  ASSERT_TRUE((*tb)->Consult(workload::AncestorRules() +
                             "parent(a, b).\nparent(b, c).\n")
                  .ok());
  testbed::QueryOptions opts =
      testbed::QueryOptions::Magic().WithStrategy(LfpStrategy::kNativeTc);
  auto outcome = (*tb)->Query("?- ancestor(a, W).", opts);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->result.rows.size(), 2u);
}

}  // namespace
}  // namespace dkb::lfp
