// Shard-count invariance: the sharded data plane is an internal layout
// choice, so the same workload must produce identical answer SETS at every
// shard count, across the whole strategy matrix. Scan order is shard-major
// and therefore legitimately differs between layouts; the oracle compares
// canonical wire bytes of SORTED rows.
//
// Also pinned here: the pathological-skew case (every row hashing to one
// shard) terminates and agrees with the unsharded run, and the
// observability surface (sys.shards, sys.query_log.shards) reports the
// layout.

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "client/in_process_client.h"
#include "gtest/gtest.h"
#include "net/wire.h"
#include "testbed/options.h"
#include "testbed/testbed.h"

namespace dkb {
namespace {

/// The paper's strategy axes plus the cache and parallel-LFP extensions —
/// the same matrix the transport oracle runs.
std::vector<std::pair<std::string, testbed::QueryOptions>> OptionMatrix() {
  using testbed::QueryOptions;
  return {
      {"seminaive", QueryOptions::SemiNaive()},
      {"naive", QueryOptions::Naive()},
      {"magic", QueryOptions::Magic()},
      {"supplementary", QueryOptions::SupplementaryMagic()},
      {"cached", QueryOptions::SemiNaive().WithCache()},
      {"parallel4", QueryOptions::SemiNaive().WithParallelism(4)},
  };
}

/// Canonical byte encoding of the result SET: schema, then the wire bytes
/// of each row in sorted order. Sorting is what makes the encoding
/// layout-independent — a sharded scan interleaves shards, an unsharded
/// one is slot-ordered.
std::string SortedCanonicalBytes(const QueryResultSet& rs) {
  net::WireWriter header;
  header.Cols(rs.schema);
  header.U32(static_cast<uint32_t>(rs.rows.size()));
  std::vector<std::string> rows;
  rows.reserve(rs.rows.size());
  for (const Tuple& row : rs.rows) {
    net::WireWriter w;
    w.Row(row);
    rows.push_back(w.Take());
  }
  std::sort(rows.begin(), rows.end());
  std::string out = header.Take();
  for (const std::string& r : rows) out += r;
  return out;
}

/// Recursive + nonrecursive rules over a parent relation shaped like the
/// paper's ancestor benchmark: a 60-deep chain with side branches, so
/// semi-naive iterates ~60 wavefronts and the branch keys spread over
/// every shard.
std::string ChainWorkload() {
  std::string text =
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- par(X, Z), anc(Z, Y).\n"
      "sib(X, Y) :- par(P, X), par(P, Y).\n";
  for (int i = 0; i < 60; ++i) {
    text += "par(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
            ").\n";
    if (i % 3 == 0) {
      text += "par(n" + std::to_string(i) + ", m" + std::to_string(i) +
              ").\n";
    }
  }
  return text;
}

/// Every par fact shares one first-column (= partition-column) value, so
/// hash routing puts the entire relation on a single shard no matter how
/// many exist. The sib self-join then runs 100x100 on that one shard.
std::string SkewWorkload() {
  std::string text =
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- par(X, Z), anc(Z, Y).\n"
      "sib(X, Y) :- par(P, X), par(P, Y).\n";
  for (int i = 0; i < 100; ++i) {
    text += "par(hub, m" + std::to_string(i) + ").\n";
  }
  return text;
}

std::unique_ptr<InProcessClient> MakeClient(size_t shards,
                                            const std::string& program) {
  auto client =
      InProcessClient::Create(testbed::TestbedOptions{}.WithShards(shards));
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  Status consulted = (*client)->Consult(program);
  EXPECT_TRUE(consulted.ok()) << consulted.ToString();
  return std::move(*client);
}

/// Runs every (strategy, goal) cell and returns its sorted canonical
/// bytes, keyed by cell label.
std::map<std::string, std::string> RunMatrix(
    InProcessClient* client, const std::vector<std::string>& goals) {
  std::map<std::string, std::string> out;
  for (const auto& [label, options] : OptionMatrix()) {
    for (const std::string& goal : goals) {
      auto result = client->Query(goal, options, net::kReportNone);
      EXPECT_TRUE(result.ok())
          << label << " / " << goal << ": " << result.status().ToString();
      if (!result.ok()) continue;
      EXPECT_GT(result->rows.size(), 0u) << label << " / " << goal;
      out[label + "/" + goal] = SortedCanonicalBytes(*result);
    }
  }
  return out;
}

TEST(ShardTest, AnswersAreInvariantAcrossShardCounts) {
  const std::string program = ChainWorkload();
  const std::vector<std::string> goals = {"anc(n0, W)", "anc(n30, W)",
                                          "sib(n3, W)"};
  const auto baseline = RunMatrix(MakeClient(1, program).get(), goals);
  ASSERT_EQ(baseline.size(), OptionMatrix().size() * goals.size());
  for (size_t shards : {2u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const auto sharded = RunMatrix(MakeClient(shards, program).get(), goals);
    ASSERT_EQ(sharded.size(), baseline.size());
    for (const auto& [cell, bytes] : baseline) {
      auto it = sharded.find(cell);
      ASSERT_NE(it, sharded.end()) << cell;
      EXPECT_EQ(bytes, it->second) << cell;
    }
  }
}

TEST(ShardTest, PathologicalSkewTerminatesAndMatches) {
  const std::string program = SkewWorkload();
  // sib(m0, W) is the 100-wide sibling set — a self-join whose build and
  // probe sides both live entirely on hub's shard.
  const std::vector<std::string> goals = {"anc(hub, W)", "sib(m0, W)"};
  const auto baseline = RunMatrix(MakeClient(1, program).get(), goals);
  const auto skewed = RunMatrix(MakeClient(8, program).get(), goals);
  ASSERT_EQ(baseline.size(), skewed.size());
  for (const auto& [cell, bytes] : baseline) {
    EXPECT_EQ(bytes, skewed.at(cell)) << cell;
  }
}

TEST(ShardTest, ObservabilityReportsTheLayout) {
  auto client = MakeClient(4, ChainWorkload());
  ASSERT_TRUE(client->Query("anc(n0, W)", {}, net::kReportNone).ok());

  // sys.query_log carries the layout the query ran under.
  auto log = client->ExecuteSql(
      "SELECT shards FROM sys.query_log WHERE executed = 1");
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  ASSERT_GT(log->rows.size(), 0u);
  EXPECT_EQ(log->rows.back()[0].as_int(), 4);

  // sys.shards has one row per (table, shard) plus interner segments.
  auto shards = client->ExecuteSql("SELECT * FROM sys.shards");
  ASSERT_TRUE(shards.ok()) << shards.status().ToString();
  int par_shards = 0;
  int interner_segments = 0;
  int64_t par_rows = 0;
  for (const Tuple& row : shards->rows) {
    if (row[1].as_string() == "interner") {
      ++interner_segments;
      continue;
    }
    if (row[0].as_string() == "edb_par") {
      ++par_shards;
      par_rows += row[3].as_int();
    }
  }
  EXPECT_EQ(par_shards, 4);
  EXPECT_GT(interner_segments, 0);
  EXPECT_EQ(par_rows, 80);  // 60 chain + 20 branch facts
}

}  // namespace
}  // namespace dkb
