// Built-in comparison predicates in rule bodies: parsing, safety, typing,
// and evaluation across every strategy.

#include <gtest/gtest.h>

#include <set>

#include "datalog/parser.h"
#include "km/type_checker.h"
#include "testbed/testbed.h"

namespace dkb {
namespace {

using datalog::ParseRule;
using lfp::LfpStrategy;

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

TEST(BuiltinParseTest, InfixOperators) {
  auto rule = ParseRule(
      "p(X, Y) :- e(X, Y), X < Y, Y <= 10, X >= 2, Y > X, X != 5, Y = Y.");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  ASSERT_EQ(rule->body.size(), 7u);
  EXPECT_FALSE(rule->body[0].is_builtin());
  EXPECT_EQ(rule->body[1].predicate, "<");
  EXPECT_EQ(rule->body[2].predicate, "<=");
  EXPECT_EQ(rule->body[3].predicate, ">=");
  EXPECT_EQ(rule->body[4].predicate, ">");
  EXPECT_EQ(rule->body[5].predicate, "!=");
  EXPECT_EQ(rule->body[6].predicate, "=");
}

TEST(BuiltinParseTest, PrologInequality) {
  auto rule = ParseRule("p(X) :- e(X, Y), X \\= Y.");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->body[1].predicate, "!=");
}

TEST(BuiltinParseTest, ConstantsOnEitherSide) {
  auto rule = ParseRule("p(X) :- w(X, C), C > 100, 'abc' != X.");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_TRUE(rule->body[1].args[1].is_constant());
  EXPECT_TRUE(rule->body[2].args[0].is_constant());
}

TEST(BuiltinParseTest, ToStringRoundTrip) {
  auto rule = ParseRule("p(X, Y) :- e(X, Y), X < Y, Y != 3.");
  ASSERT_TRUE(rule.ok());
  auto reparsed = ParseRule(rule->ToString());
  ASSERT_TRUE(reparsed.ok()) << rule->ToString();
  EXPECT_EQ(*rule, *reparsed);
}

TEST(BuiltinParseTest, NegatedBuiltinRejected) {
  EXPECT_FALSE(ParseRule("p(X) :- e(X, Y), not X < Y.").ok());
}

// ---------------------------------------------------------------------------
// Semantic checks
// ---------------------------------------------------------------------------

const std::map<std::string, km::PredicateTypes> kBase = {
    {"e", {DataType::kVarchar, DataType::kVarchar}},
    {"w", {DataType::kVarchar, DataType::kInteger}},
};

TEST(BuiltinCheckTest, UnboundComparisonVariableRejected) {
  auto program = datalog::ParseProgram("p(X) :- e(X, Y2), X < Q.");
  ASSERT_TRUE(program.ok());
  auto result = km::TypeCheck(program->rules, kBase);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kSemanticError);
}

TEST(BuiltinCheckTest, MixedTypeComparisonRejected) {
  auto program = datalog::ParseProgram("p(X) :- e(X, S), w(X, N), S < N.");
  ASSERT_TRUE(program.ok());
  auto result = km::TypeCheck(program->rules, kBase);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTypeError);
}

TEST(BuiltinCheckTest, ConstantTypeAgainstVariableRejected) {
  auto program = datalog::ParseProgram("p(X) :- w(X, N), N > 'big'.");
  ASSERT_TRUE(program.ok());
  auto result = km::TypeCheck(program->rules, kBase);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTypeError);
}

TEST(BuiltinCheckTest, WellTypedComparisonAccepted) {
  auto program =
      datalog::ParseProgram("p(X) :- w(X, N), N > 10, X != 'skip'.");
  ASSERT_TRUE(program.ok());
  auto result = km::TypeCheck(program->rules, kBase);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

std::set<std::string> AnswerSet(const QueryResult& result) {
  std::set<std::string> out;
  for (const Tuple& row : result.rows) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    out.insert(key);
  }
  return out;
}

class BuiltinE2eTest : public ::testing::TestWithParam<LfpStrategy> {
 protected:
  void SetUp() override {
    auto tb = testbed::Testbed::Create();
    ASSERT_TRUE(tb.ok());
    tb_ = std::move(*tb);
  }

  QueryResult Query(const std::string& goal, bool magic = false) {
    testbed::QueryOptions opts =
        (magic ? testbed::QueryOptions::Magic()
               : testbed::QueryOptions::SemiNaive())
            .WithStrategy(GetParam());
    auto outcome = tb_->Query(goal, opts);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    return outcome.ok() ? std::move(outcome->result) : QueryResult{};
  }

  std::unique_ptr<testbed::Testbed> tb_;
};

TEST_P(BuiltinE2eTest, IntegerThreshold) {
  ASSERT_TRUE(tb_->Consult(
                     "heavy(X) :- weight(X, W), W > 100.\n"
                     "weight(feather, 1).\nweight(brick, 250).\n"
                     "weight(anvil, 5000).\nweight(kg, 100).\n")
                  .ok());
  EXPECT_EQ(AnswerSet(Query("?- heavy(X).")),
            (std::set<std::string>{"brick|", "anvil|"}));
}

TEST_P(BuiltinE2eTest, OrderedPairsNoDuplicates) {
  ASSERT_TRUE(tb_->Consult(
                     "pair(X, Y) :- n(X), n(Y), X < Y.\n"
                     "n(1).\nn(2).\nn(3).\n")
                  .ok());
  EXPECT_EQ(AnswerSet(Query("?- pair(X, Y).")),
            (std::set<std::string>{"1|2|", "1|3|", "2|3|"}));
}

TEST_P(BuiltinE2eTest, InequalityInRecursiveRule) {
  // Paths that never return to the start node.
  ASSERT_TRUE(tb_->Consult(
                     "away(S, Y) :- e(S, Y), S != Y.\n"
                     "away(S, Y) :- away(S, Z), e(Z, Y), Y != S.\n"
                     "e(a, b).\ne(b, c).\ne(c, a).\ne(c, d).\n")
                  .ok());
  EXPECT_EQ(AnswerSet(Query("?- away(a, W).")),
            (std::set<std::string>{"b|", "c|", "d|"}));
}

TEST_P(BuiltinE2eTest, BuiltinBeforeBindingAtom) {
  // The filter is written before the atom that binds its variables.
  ASSERT_TRUE(tb_->Consult(
                     "big(X) :- W > 10, weight(X, W).\n"
                     "weight(a, 5).\nweight(b, 50).\n")
                  .ok());
  EXPECT_EQ(AnswerSet(Query("?- big(X).")), (std::set<std::string>{"b|"}));
}

TEST_P(BuiltinE2eTest, WithMagicSets) {
  ASSERT_TRUE(tb_->Consult(
                     "reach(S, Y) :- e(S, Y), Y != stop.\n"
                     "reach(S, Y) :- reach(S, Z), e(Z, Y), Y != stop.\n"
                     "e(a, b).\ne(b, stop).\ne(b, c).\ne(c, d).\n"
                     "e(stop, z).\n")
                  .ok());
  auto plain = AnswerSet(Query("?- reach(a, W)."));
  auto magic = AnswerSet(Query("?- reach(a, W).", /*magic=*/true));
  EXPECT_EQ(plain, (std::set<std::string>{"b|", "c|", "d|"}));
  EXPECT_EQ(plain, magic);
}

TEST_P(BuiltinE2eTest, StringComparison) {
  ASSERT_TRUE(tb_->Consult(
                     "before(X, Y) :- word(X), word(Y), X < Y.\n"
                     "word(apple).\nword(beta).\nword(cherry).\n")
                  .ok());
  EXPECT_EQ(Query("?- before(X, Y).").rows.size(), 3u);
  EXPECT_EQ(AnswerSet(Query("?- before(beta, Y).")),
            (std::set<std::string>{"cherry|"}));
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, BuiltinE2eTest,
                         ::testing::Values(LfpStrategy::kNaive,
                                           LfpStrategy::kSemiNaive,
                                           LfpStrategy::kNative),
                         [](const auto& info) {
                           std::string name = lfp::StrategyName(info.param);
                           std::string out;
                           for (char c : name) {
                             if (std::isalnum(static_cast<unsigned char>(c)))
                               out += c;
                           }
                           return out;
                         });

TEST(BuiltinE2eSingleTest, NegationAndBuiltinTogether) {
  auto tb = testbed::Testbed::Create();
  ASSERT_TRUE(tb.ok());
  ASSERT_TRUE((*tb)->Consult(
                     "good(X) :- score(X, S), S >= 50, not banned(X).\n"
                     "score(a, 80).\nscore(b, 40).\nscore(c, 90).\n"
                     "banned(c).\n")
                  .ok());
  auto outcome = (*tb)->Query("?- good(X).");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(AnswerSet(outcome->result), (std::set<std::string>{"a|"}));
}

}  // namespace
}  // namespace dkb
