// Parameterized sweep over the paper's §5.2 data characterization: the
// ancestor query must produce identical answers under every evaluation
// strategy and optimization for each relation shape (list, full binary
// tree, DAG, cyclic graph).

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "testbed/testbed.h"
#include "workload/data_gen.h"
#include "workload/queries.h"

namespace dkb {
namespace {

using lfp::LfpStrategy;

enum class DataShape { kList, kTree, kDag, kCyclic };

const char* ShapeName(DataShape shape) {
  switch (shape) {
    case DataShape::kList:
      return "List";
    case DataShape::kTree:
      return "Tree";
    case DataShape::kDag:
      return "Dag";
    case DataShape::kCyclic:
      return "Cyclic";
  }
  return "";
}

workload::EdgeSet MakeData(DataShape shape) {
  switch (shape) {
    case DataShape::kList:
      return workload::MakeLists(3, 12);
    case DataShape::kTree:
      return workload::MakeFullBinaryTrees(1, 5);
    case DataShape::kDag:
      return workload::MakeDag(6, 4, 2, 11);
    case DataShape::kCyclic:
      return workload::MakeCyclicGraph(6, 4, 2, 3, 2, 11);
  }
  return {};
}

std::set<std::string> AnswerSet(const QueryResult& result) {
  std::set<std::string> out;
  for (const Tuple& row : result.rows) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    out.insert(key);
  }
  return out;
}

class DataShapeSweepTest
    : public ::testing::TestWithParam<std::tuple<DataShape, bool>> {};

TEST_P(DataShapeSweepTest, StrategiesAgree) {
  auto [shape, nonlinear] = GetParam();
  workload::EdgeSet data = MakeData(shape);
  auto tb_or = testbed::Testbed::Create();
  ASSERT_TRUE(tb_or.ok());
  auto tb = std::move(*tb_or);
  ASSERT_TRUE(tb->Consult(nonlinear ? workload::AncestorRulesNonLinear()
                                    : workload::AncestorRules())
                  .ok());
  ASSERT_TRUE(
      tb->DefineBase("parent", {DataType::kVarchar, DataType::kVarchar})
          .ok());
  ASSERT_TRUE(tb->AddFacts("parent", data.ToTuples()).ok());

  for (const std::string& root :
       {data.roots.front(), data.roots.back()}) {
    std::set<std::string> reference;
    bool have_reference = false;
    for (auto strategy : {LfpStrategy::kSemiNaive, LfpStrategy::kNaive,
                          LfpStrategy::kNative, LfpStrategy::kNativeTc}) {
      for (bool magic : {false, true}) {
        testbed::QueryOptions opts =
            (magic ? testbed::QueryOptions::Magic()
                   : testbed::QueryOptions::SemiNaive())
                .WithStrategy(strategy);
        auto outcome =
            tb->Query(workload::AncestorQuery(root), opts);
        ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
        auto answers = AnswerSet(outcome->result);
        if (!have_reference) {
          reference = answers;
          have_reference = true;
        } else {
          EXPECT_EQ(answers, reference)
              << ShapeName(shape) << " root=" << root << " "
              << lfp::StrategyName(strategy) << " magic=" << magic;
        }
      }
    }
    // Sanity: queries from the first root reach something on every shape.
    if (root == data.roots.front()) {
      EXPECT_FALSE(reference.empty()) << ShapeName(shape);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DataShapeSweepTest,
    ::testing::Combine(::testing::Values(DataShape::kList, DataShape::kTree,
                                         DataShape::kDag,
                                         DataShape::kCyclic),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(ShapeName(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "NonLinear" : "Linear");
    });

}  // namespace
}  // namespace dkb
