#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "datalog/parser.h"
#include "magic/magic_sets.h"
#include "testbed/testbed.h"
#include "workload/data_gen.h"
#include "workload/queries.h"

namespace dkb::magic {
namespace {

std::vector<datalog::Rule> Rules(const std::string& text) {
  auto program = datalog::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return program->rules;
}

datalog::Atom Goal(const std::string& text) {
  auto atom = datalog::ParseQuery(text);
  EXPECT_TRUE(atom.ok());
  return *atom;
}

bool HasRule(const MagicRewrite& rewrite, const std::string& text) {
  auto rule = datalog::ParseRule(text);
  EXPECT_TRUE(rule.ok()) << rule.status().ToString();
  return std::find(rewrite.rules.begin(), rewrite.rules.end(), *rule) !=
         rewrite.rules.end();
}

TEST(SupplementaryTest, SameGenerationStructure) {
  auto rules = Rules(
      "sg(X,Y) :- flat(X,Y).\n"
      "sg(X,Y) :- up(X,U), sg(U,V), down(V,Y).\n");
  auto rewrite = ApplyGeneralizedMagicSets(rules, Goal("sg(a, W)"), {"sg"},
                                           MagicVariant::kSupplementary);
  ASSERT_TRUE(rewrite.ok()) << rewrite.status().ToString();
  EXPECT_TRUE(rewrite->rewritten);
  // Single-atom exit rule keeps the plain modified form.
  EXPECT_TRUE(HasRule(*rewrite, "sg__bf(X, Y) :- m_sg__bf(X), flat(X, Y)."));
  // The recursive rule materializes two supplementary stages:
  //   sup1_1(X, U) :- m_sg__bf(X), up(X, U).
  //   m_sg__bf(U)  :- sup1_1(X, U).
  //   sup1_2(X, V) :- sup1_1(X, U), sg__bf(U, V).
  //   sg__bf(X, Y) :- sup1_2(X, V), down(V, Y).
  EXPECT_EQ(rewrite->supplementary_predicates.size(), 2u);
  EXPECT_TRUE(
      HasRule(*rewrite, "sup1_1__sg__bf(U, X) :- m_sg__bf(X), up(X, U)."));
  EXPECT_TRUE(HasRule(*rewrite, "m_sg__bf(U) :- sup1_1__sg__bf(U, X)."));
  EXPECT_TRUE(HasRule(
      *rewrite,
      "sup1_2__sg__bf(V, X) :- sup1_1__sg__bf(U, X), sg__bf(U, V)."));
  EXPECT_TRUE(
      HasRule(*rewrite, "sg__bf(X, Y) :- sup1_2__sg__bf(V, X), down(V, Y)."));
}

TEST(SupplementaryTest, SingleAtomBodiesUnchanged) {
  auto rules = Rules(
      "anc(X,Y) :- par(X,Y).\n"
      "anc(X,Y) :- par(X,Z), anc(Z,Y).\n");
  auto generalized = ApplyGeneralizedMagicSets(
      rules, Goal("anc(a, W)"), {"anc"}, MagicVariant::kGeneralized);
  auto supplementary = ApplyGeneralizedMagicSets(
      rules, Goal("anc(a, W)"), {"anc"}, MagicVariant::kSupplementary);
  ASSERT_TRUE(generalized.ok() && supplementary.ok());
  // The two-atom recursive rule gets one sup stage; the exit rule is
  // untouched, and no rule body is ever longer than two atoms.
  EXPECT_EQ(supplementary->supplementary_predicates.size(), 1u);
  for (const datalog::Rule& rule : supplementary->rules) {
    EXPECT_LE(rule.body.size(), 2u) << rule.ToString();
  }
}

TEST(SupplementaryTest, IdentityCasesMatchGeneralized) {
  auto rules = Rules("anc(X,Y) :- par(X,Y).\n");
  auto rewrite = ApplyGeneralizedMagicSets(rules, Goal("anc(X, Y)"), {"anc"},
                                           MagicVariant::kSupplementary);
  ASSERT_TRUE(rewrite.ok());
  EXPECT_FALSE(rewrite->rewritten);
}

// ---------------------------------------------------------------------------
// End-to-end equivalence
// ---------------------------------------------------------------------------

std::set<std::string> AnswerSet(const QueryResult& result) {
  std::set<std::string> out;
  for (const Tuple& row : result.rows) {
    std::string key;
    for (const Value& v : row) key += v.ToString() + "|";
    out.insert(key);
  }
  return out;
}

TEST(SupplementaryTest, SameGenerationAnswersMatch) {
  auto tb_or = testbed::Testbed::Create();
  ASSERT_TRUE(tb_or.ok());
  auto tb = std::move(*tb_or);
  ASSERT_TRUE(tb->Consult(workload::SameGenerationRules()).ok());
  // Reporting tree: up/down over a depth-6 binary tree, flat at the root.
  auto tree = workload::MakeFullBinaryTrees(1, 6);
  std::vector<Tuple> up;
  std::vector<Tuple> down;
  for (const auto& [mgr, emp] : tree.edges) {
    up.push_back({Value(emp), Value(mgr)});
    down.push_back({Value(mgr), Value(emp)});
  }
  for (const char* pred : {"up", "down", "flat"}) {
    ASSERT_TRUE(
        tb->DefineBase(pred, {DataType::kVarchar, DataType::kVarchar}).ok());
  }
  ASSERT_TRUE(tb->AddFacts("up", up).ok());
  ASSERT_TRUE(tb->AddFacts("down", down).ok());
  ASSERT_TRUE(tb->AddFacts("flat", {{Value("t0_0"), Value("t0_0")}}).ok());

  std::string goal = "?- sg('t0_31', W).";
  testbed::QueryOptions plain = testbed::QueryOptions::SemiNaive();
  testbed::QueryOptions magic = testbed::QueryOptions::Magic();
  testbed::QueryOptions sup = testbed::QueryOptions::SupplementaryMagic();

  auto p = tb->Query(goal, plain);
  auto m = tb->Query(goal, magic);
  auto s = tb->Query(goal, sup);
  ASSERT_TRUE(p.ok() && m.ok() && s.ok())
      << p.status().ToString() << m.status().ToString()
      << s.status().ToString();
  EXPECT_EQ(AnswerSet(p->result), AnswerSet(m->result));
  EXPECT_EQ(AnswerSet(p->result), AnswerSet(s->result));
  EXPECT_EQ(p->result.rows.size(), 32u);  // all leaves
}

TEST(SupplementaryTest, AllStrategiesAgreeOnAncestor) {
  auto tb_or = testbed::Testbed::Create();
  ASSERT_TRUE(tb_or.ok());
  auto tb = std::move(*tb_or);
  ASSERT_TRUE(tb->Consult(workload::AncestorRules()).ok());
  ASSERT_TRUE(
      tb->DefineBase("parent", {DataType::kVarchar, DataType::kVarchar})
          .ok());
  ASSERT_TRUE(
      tb->AddFacts("parent",
                   workload::MakeFullBinaryTrees(1, 6).ToTuples())
          .ok());
  testbed::QueryOptions sup = testbed::QueryOptions::SupplementaryMagic();
  std::set<std::string> reference;
  for (auto strategy :
       {lfp::LfpStrategy::kSemiNaive, lfp::LfpStrategy::kNaive,
        lfp::LfpStrategy::kNative}) {
    sup.WithStrategy(strategy);
    auto outcome = tb->Query("?- ancestor('t0_1', W).", sup);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    auto answers = AnswerSet(outcome->result);
    if (reference.empty()) {
      reference = answers;
      EXPECT_EQ(reference.size(), 30u);
    } else {
      EXPECT_EQ(answers, reference) << lfp::StrategyName(strategy);
    }
  }
}

TEST(SupplementaryTest, ThreeDerivedAtomsChain) {
  // A rule with three guarded derived atoms produces two sup stages and
  // still evaluates correctly.
  auto tb_or = testbed::Testbed::Create();
  ASSERT_TRUE(tb_or.ok());
  auto tb = std::move(*tb_or);
  ASSERT_TRUE(tb->Consult(
                    "hop(X,Y) :- e(X,Y).\n"
                    "hop(X,Y) :- e(X,Z), hop(Z,Y).\n"
                    "tri(X,Y) :- hop(X,A), hop(A, B), hop(B, Y).\n"
                    "e(n1, n2).\ne(n2, n3).\ne(n3, n4).\ne(n4, n5).\n")
                  .ok());
  testbed::QueryOptions sup = testbed::QueryOptions::SupplementaryMagic();
  auto with_sup = tb->Query("?- tri(n1, W).", sup);
  auto without = tb->Query("?- tri(n1, W).");
  ASSERT_TRUE(with_sup.ok()) << with_sup.status().ToString();
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(AnswerSet(with_sup->result), AnswerSet(without->result));
  EXPECT_EQ(AnswerSet(with_sup->result),
            (std::set<std::string>{"n4|", "n5|"}));
}

}  // namespace
}  // namespace dkb::magic
