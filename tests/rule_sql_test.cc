#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "km/rule_sql.h"

namespace dkb::km {
namespace {

datalog::Rule R(const std::string& text) {
  auto rule = datalog::ParseRule(text);
  EXPECT_TRUE(rule.ok()) << rule.status().ToString();
  return *rule;
}

/// All predicates bind to "<pred>_tbl" with columns c0..c{arity-1}.
Result<RelationBinding> SimpleResolver(const datalog::Atom& atom, size_t) {
  RelationBinding b;
  b.table = atom.predicate + "_tbl";
  for (size_t i = 0; i < atom.arity(); ++i) {
    b.columns.push_back("c" + std::to_string(i));
  }
  return b;
}

TEST(RuleSqlTest, SingleAtomProjection) {
  auto sql = RuleToSelect(R("p(Y, X) :- e(X, Y)."), SimpleResolver);
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_EQ(*sql, "SELECT DISTINCT r0.c1, r0.c0 FROM e_tbl r0");
}

TEST(RuleSqlTest, JoinOnSharedVariable) {
  auto sql =
      RuleToSelect(R("p(X, Y) :- e(X, Z), f(Z, Y)."), SimpleResolver);
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(*sql,
            "SELECT DISTINCT r0.c0, r1.c1 FROM e_tbl r0, f_tbl r1 "
            "WHERE r1.c0 = r0.c1");
}

TEST(RuleSqlTest, ConstantsBecomeWhereConjuncts) {
  auto sql = RuleToSelect(R("p(X) :- e(king, X, 7)."), SimpleResolver);
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(*sql,
            "SELECT DISTINCT r0.c1 FROM e_tbl r0 "
            "WHERE r0.c0 = 'king' AND r0.c2 = 7");
}

TEST(RuleSqlTest, ConstantInHeadProjectsLiteral) {
  auto sql = RuleToSelect(R("p(tag, X) :- e(X, Y2)."), SimpleResolver);
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(*sql, "SELECT DISTINCT 'tag', r0.c0 FROM e_tbl r0");
}

TEST(RuleSqlTest, RepeatedVariableWithinAtom) {
  auto sql = RuleToSelect(R("loop(X) :- e(X, X)."), SimpleResolver);
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(*sql,
            "SELECT DISTINCT r0.c0 FROM e_tbl r0 WHERE r0.c1 = r0.c0");
}

TEST(RuleSqlTest, ThreeWayJoin) {
  auto sql = RuleToSelect(R("sg(X, Y) :- up(X, U), sg(U, V), down(V, Y)."),
                          SimpleResolver);
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(*sql,
            "SELECT DISTINCT r0.c0, r2.c1 "
            "FROM up_tbl r0, sg_tbl r1, down_tbl r2 "
            "WHERE r1.c0 = r0.c1 AND r2.c0 = r1.c1");
}

TEST(RuleSqlTest, ResolverSeesBodyPosition) {
  // A delta-substituting resolver maps occurrence 1 of `anc` elsewhere.
  BindingResolver resolver = [](const datalog::Atom& atom,
                                size_t body_index) -> Result<RelationBinding> {
    RelationBinding b;
    b.table = (atom.predicate == "anc" && body_index == 1) ? "#anc_delta"
                                                           : atom.predicate;
    for (size_t i = 0; i < atom.arity(); ++i) {
      b.columns.push_back("c" + std::to_string(i));
    }
    return b;
  };
  auto sql = RuleToSelect(R("anc(X,Y) :- par(X,Z), anc(Z,Y)."), resolver);
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("#anc_delta r1"), std::string::npos);
}

TEST(RuleSqlTest, UnsafeRuleRejected) {
  auto sql = RuleToSelect(R("p(X, Y) :- e(X, Z2)."), SimpleResolver);
  ASSERT_FALSE(sql.ok());
  EXPECT_EQ(sql.status().code(), StatusCode::kSemanticError);
}

TEST(RuleSqlTest, BodilessClauseRejected) {
  auto sql = RuleToSelect(R("p(a, b)."), SimpleResolver);
  ASSERT_FALSE(sql.ok());
  EXPECT_EQ(sql.status().code(), StatusCode::kInvalidArgument);
}

TEST(RuleSqlTest, ResolverErrorsPropagate) {
  BindingResolver failing = [](const datalog::Atom&,
                               size_t) -> Result<RelationBinding> {
    return Status::Internal("no binding");
  };
  EXPECT_FALSE(RuleToSelect(R("p(X) :- e(X, Y2)."), failing).ok());
}

TEST(RuleSqlTest, QuotedConstantEscaped) {
  auto sql = RuleToSelect(R("p(X) :- e(X, 'o\\'neil')."), SimpleResolver);
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("'o''neil'"), std::string::npos);
}

}  // namespace
}  // namespace dkb::km
