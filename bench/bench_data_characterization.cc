// Section 5.2 supplement: the paper characterizes base relations by their
// directed-graph shape (lists, full binary trees, DAGs, cyclic graphs) and
// notes that "the results will obviously be different for other queries and
// data types". This bench runs the same ancestor query across all four data
// types at comparable tuple counts.

#include "bench_setup.h"

namespace dkb::bench {
namespace {

struct DataCase {
  const char* name;
  workload::EdgeSet edges;
  std::string root;
};

void Run() {
  Banner("Section 5.2 - D/KB data characterization",
         "SIGMOD'88 D/KB testbed, Section 5.2 (relation types table)",
         "t_e and iteration counts are shaped by path length and fan-out: "
         "lists iterate longest, trees/DAGs fan out, cycles still terminate");

  std::vector<DataCase> cases;
  cases.push_back({"lists (8 x 64)", workload::MakeLists(8, 64), "l0_0"});
  cases.push_back(
      {"binary tree (depth 9)", workload::MakeFullBinaryTrees(1, 9), "t0_0"});
  cases.push_back(
      {"dag (16 levels x 32)", workload::MakeDag(16, 32, 1, 7), "g0_0"});
  cases.push_back({"cyclic (dag + 8 cycles)",
                   workload::MakeCyclicGraph(16, 32, 1, 8, 4, 7), "g0_0"});

  TablePrinter table({"data_type", "tuples", "answers", "iterations",
                      "t_e_seminaive", "t_e_magic"});
  for (DataCase& dc : cases) {
    auto tb = Unwrap(testbed::Testbed::Create(), "create");
    CheckOk(tb->Consult(workload::AncestorRules()), "consult");
    CheckOk(tb->DefineBase("parent",
                           {DataType::kVarchar, DataType::kVarchar}),
            "define");
    CheckOk(tb->AddFacts("parent", dc.edges.ToTuples()), "facts");
    datalog::Atom goal = workload::AncestorQuery(dc.root);

    testbed::QueryOptions semi = testbed::QueryOptions::SemiNaive();
    testbed::QueryOptions magic = testbed::QueryOptions::Magic();
    size_t answers = 0;
    int64_t iterations = 0;
    int64_t t_semi = MedianMicros(3, [&]() {
      auto outcome = Unwrap(tb->Query(goal, semi), "query");
      answers = outcome.result.rows.size();
      iterations = outcome.report.exec.iterations;
      return outcome.report.exec.t_total_us;
    });
    int64_t t_magic = MedianMicros(3, [&]() {
      return Unwrap(tb->Query(goal, magic), "magic query").report.exec.t_total_us;
    });
    table.AddRow({dc.name, std::to_string(dc.edges.num_tuples()),
                  std::to_string(answers), std::to_string(iterations),
                  FormatUs(t_semi), FormatUs(t_magic)});
  }
  table.Print();
}

}  // namespace
}  // namespace dkb::bench

int main() {
  dkb::bench::Run();
  return 0;
}
