// Test 6 / Table 5: relative contributions of the steps inside naive and
// semi-naive LFP evaluation: temp-table management, RHS (or differential)
// evaluation, and termination checking.

#include "bench_setup.h"

namespace dkb::bench {
namespace {

void Run() {
  Banner("Test 6 / Table 5 - LFP evaluation breakdown",
         "SIGMOD'88 D/KB testbed, Section 5.3.1.2 Test 6, Table 5",
         "RHS evaluation + termination checking dominate (~95% naive, ~85% "
         "semi-naive); naive's RHS/termination work is 2.5-3x semi-naive's");

  const int kDepth = SmokeSize(9, 6);
  const int kReps = Reps(5);
  auto tb = MakeAncestorTree(kDepth);
  datalog::Atom goal = TreeAncestorGoal(0);  // whole-tree closure

  TablePrinter table({"strategy", "t_temp", "t_rhs", "t_term", "t_total",
                      "temp_share", "rhs+term_share", "iterations"});
  lfp::ExecutionStats naive_stats;
  lfp::ExecutionStats semi_stats;
  for (auto [strategy, sink] :
       {std::pair{lfp::LfpStrategy::kNaive, &naive_stats},
        std::pair{lfp::LfpStrategy::kSemiNaive, &semi_stats}}) {
    testbed::QueryOptions opts =
        testbed::QueryOptions::SemiNaive().WithStrategy(strategy);
    std::vector<lfp::ExecutionStats> runs;
    for (int i = 0; i < kReps; ++i) {
      runs.push_back(Unwrap(tb->Query(goal, opts), "Query").report.exec);
    }
    std::sort(runs.begin(), runs.end(),
              [](const lfp::ExecutionStats& a, const lfp::ExecutionStats& b) {
                return a.t_total_us < b.t_total_us;
              });
    *sink = runs[runs.size() / 2];
    const lfp::ExecutionStats& s = *sink;
    double total = static_cast<double>(
        std::max<int64_t>(1, s.t_temp_us + s.t_rhs_us + s.t_term_us));
    table.AddRow({lfp::StrategyName(strategy), FormatUs(s.t_temp_us),
                  FormatUs(s.t_rhs_us), FormatUs(s.t_term_us),
                  FormatUs(s.t_total_us), FormatPct(s.t_temp_us / total),
                  FormatPct((s.t_rhs_us + s.t_term_us) / total),
                  std::to_string(s.iterations)});
  }
  table.Print();

  std::printf("\nRHS+termination work ratio (naive / semi-naive): %s\n",
              FormatF(static_cast<double>(naive_stats.t_rhs_us +
                                          naive_stats.t_term_us) /
                          std::max<int64_t>(1, semi_stats.t_rhs_us +
                                                   semi_stats.t_term_us),
                      2)
                  .c_str());
}

}  // namespace
}  // namespace dkb::bench

int main(int argc, char** argv) {
  dkb::bench::ParseBenchArgs(argc, argv);
  dkb::bench::Run();
  return 0;
}
