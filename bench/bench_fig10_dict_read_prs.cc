// Test 2 / Figure 10: data-dictionary read time t_read as a function of the
// number of derived predicates relevant to the query, P_rs.

#include "bench_setup.h"

namespace dkb::bench {
namespace {

void Run() {
  Banner("Test 2 / Figure 10 - t_read vs P_rs",
         "SIGMOD'88 D/KB testbed, Section 5.3.1.1 Test 2, Figure 10",
         "t_read grows with P_rs (dictionary-join selectivity)");

  const int kPs = SmokeSize(400, 100);
  const std::vector<int> kPrs = Sweep({1, 2, 4, 8, 16, 32, 64});
  const int kReps = Reps(15);

  TablePrinter table({"P_rs", "t_read"});
  for (int prs : kPrs) {
    StoredRuleBaseFixture fx = MakeStoredRuleBase(kPs, prs);
    datalog::Atom goal;
    goal.predicate = fx.rulebase.query_pred;
    goal.args = {datalog::Term::Constant(Value("k")),
                 datalog::Term::Variable("W")};
    int64_t median = MedianMicros(kReps, [&]() {
      km::CompilationStats stats;
      testbed::QueryOptions opts;
      Unwrap(fx.tb->CompileOnly(goal, opts, &stats), "CompileOnly");
      return stats.t_read_us;
    });
    table.AddRow({std::to_string(prs), FormatUs(median)});
  }
  table.Print();
}

}  // namespace
}  // namespace dkb::bench

int main(int argc, char** argv) {
  dkb::bench::ParseBenchArgs(argc, argv);
  dkb::bench::Run();
  return 0;
}
