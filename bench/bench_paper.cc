// Aggregate paper-suite runner: executes every bench_fig* / bench_table*
// binary (plus the concurrency bench), captures their machine-readable
// "  csv," echo blocks, and merges everything into one BENCH_paper.json.
//
// CI runs `bench_paper --smoke` on every push: each child bench shrinks its
// sweeps under --smoke, so the whole suite finishes in seconds and acts as
// a perf-smoke + schema-drift gate rather than a measurement. Without
// --smoke this produces the full paper-scale result file.
//
// --compare OLD.json diffs the freshly written result file against a prior
// run: every timed cell (FormatUs units: "N us" / "N.NN ms" / "N.NN s") is
// matched by bench, table, and the row's non-time cells, and the run fails
// (exit 1) if any cell slowed down by more than 25% AND by more than the
// absolute noise floor (--compare-floor-us, default 50000). CI feeds it a
// baseline produced moments earlier on the same runner (smoke-vs-smoke), so
// it gates catastrophic slowdowns, not microbenchmark jitter.
//
//   bench_paper [--smoke] [--out BENCH_paper.json]
//               [--compare OLD.json] [--compare-floor-us N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/str_util.h"

namespace dkb::bench {
namespace {

/// The paper suite in paper order (Figures 7-15, Tables 4/5/8), then the
/// concurrency and network benches whose BENCH_parallel.json /
/// BENCH_net.json are folded into the merged file. Keep in sync with
/// bench/CMakeLists.txt.
const char* const kPaperBenches[] = {
    "bench_fig07_extract",
    "bench_fig08_extract_rrs",
    "bench_fig09_dict_read",
    "bench_fig10_dict_read_prs",
    "bench_table4_compile_breakdown",
    "bench_fig11_relevant_facts",
    "bench_fig12_naive_vs_seminaive",
    "bench_table5_lfp_breakdown",
    "bench_fig13_magic_crossover",
    "bench_fig14_magic_components",
    "bench_fig15_update",
    "bench_table8_update_breakdown",
    "bench_concurrency",
    "bench_net",
    "bench_shard",
    "bench_wal",
};

struct CsvTable {
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;
};

std::vector<std::string> SplitCsvLine(const std::string& line) {
  // TablePrinter's echo format: "  csv,cell,cell,...". Cells never contain
  // commas (they are numbers, units, and identifiers).
  std::vector<std::string> cells;
  std::string rest = line.substr(std::strlen("  csv,"));
  size_t start = 0;
  while (true) {
    size_t comma = rest.find(',', start);
    if (comma == std::string::npos) {
      cells.push_back(rest.substr(start));
      break;
    }
    cells.push_back(rest.substr(start, comma - start));
    start = comma + 1;
  }
  return cells;
}

/// Extracts the csv echo blocks from a bench's stdout. Consecutive csv
/// lines form one table: first line headers, the rest rows.
std::vector<CsvTable> ParseCsvBlocks(const std::string& output) {
  std::vector<CsvTable> tables;
  bool in_block = false;
  size_t pos = 0;
  while (pos <= output.size()) {
    size_t eol = output.find('\n', pos);
    std::string line = output.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    if (line.rfind("  csv,", 0) == 0) {
      if (!in_block) {
        tables.emplace_back();
        tables.back().headers = SplitCsvLine(line);
        in_block = true;
      } else {
        tables.back().rows.push_back(SplitCsvLine(line));
      }
    } else {
      in_block = false;
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return tables;
}

std::string TableToJson(const CsvTable& table) {
  std::string out = "{\"headers\": [";
  for (size_t i = 0; i < table.headers.size(); ++i) {
    out += (i ? ", " : "") + ("\"" + JsonEscape(table.headers[i]) + "\"");
  }
  out += "], \"rows\": [";
  for (size_t r = 0; r < table.rows.size(); ++r) {
    out += r ? ", [" : "[";
    for (size_t c = 0; c < table.rows[r].size(); ++c) {
      out += (c ? ", " : "") + ("\"" + JsonEscape(table.rows[r][c]) + "\"");
    }
    out += "]";
  }
  out += "]}";
  return out;
}

/// Runs one child bench via popen, returns false on non-zero exit.
bool RunChild(const std::string& command, std::string* output) {
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) {
    std::fprintf(stderr, "FATAL: popen(%s) failed\n", command.c_str());
    return false;
  }
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) {
    output->append(buf, n);
  }
  int rc = pclose(pipe);
  return rc == 0;
}

std::string ReadFileOrEmpty(const std::string& path) {
  FILE* in = std::fopen(path.c_str(), "r");
  if (in == nullptr) return "";
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) text.append(buf, n);
  std::fclose(in);
  return text;
}

int RunSuite(const std::string& self_path, const std::string& out_path) {
  // Children live next to this binary.
  std::string bin_dir = ".";
  size_t slash = self_path.find_last_of('/');
  if (slash != std::string::npos) bin_dir = self_path.substr(0, slash);

  std::string benches_json = "[";
  int ran = 0;
  for (const char* name : kPaperBenches) {
    std::string command = bin_dir + "/" + name;
    if (SmokeMode()) command += " --smoke";
    // The network bench also measures trace-propagation overhead so the
    // merged JSON always carries the traced-vs-untraced sustain pair.
    if (std::string(name) == "bench_net") command += " --trace";
    command += " 2>&1";
    std::printf("[bench_paper] running %s ...\n", name);
    std::fflush(stdout);
    std::string output;
    if (!RunChild(command, &output)) {
      std::fprintf(stderr, "FATAL: %s failed; output follows\n%s\n", name,
                   output.c_str());
      return 1;
    }
    std::vector<CsvTable> tables = ParseCsvBlocks(output);
    if (tables.empty() && std::string(name) != "bench_concurrency") {
      // Every table bench must echo at least one csv block — an empty
      // result means the output format drifted and plots would go dark.
      std::fprintf(stderr, "FATAL: %s emitted no '  csv,' blocks\n", name);
      return 1;
    }
    std::string entry = "{\"bench\": \"" + JsonEscape(name) + "\", ";
    entry += "\"tables\": [";
    for (size_t t = 0; t < tables.size(); ++t) {
      entry += (t ? ", " : "") + TableToJson(tables[t]);
    }
    entry += "]}";
    benches_json += (ran ? ", " : "") + entry;
    ++ran;
  }
  benches_json += "]";

  BenchJson json("paper");
  json.Add("smoke", SmokeMode());
  json.Add("benches_run", static_cast<int64_t>(ran));
  json.AddRaw("benches", benches_json);

  // bench_concurrency writes BENCH_parallel.json into the working
  // directory; fold it in so one artifact carries the whole suite.
  std::string parallel = ReadFileOrEmpty("BENCH_parallel.json");
  if (!parallel.empty()) {
    std::string error;
    if (!JsonValidator::Validate(parallel, &error)) {
      std::fprintf(stderr, "FATAL: BENCH_parallel.json invalid: %s\n",
                   error.c_str());
      return 1;
    }
    json.AddRaw("parallel", parallel);
  }

  // Same for bench_net's latency histograms.
  std::string net = ReadFileOrEmpty("BENCH_net.json");
  if (!net.empty()) {
    std::string error;
    if (!JsonValidator::Validate(net, &error)) {
      std::fprintf(stderr, "FATAL: BENCH_net.json invalid: %s\n",
                   error.c_str());
      return 1;
    }
    json.AddRaw("net", net);
  }

  // And bench_shard's shards=1 vs shards=4 comparison.
  std::string shard = ReadFileOrEmpty("BENCH_shard.json");
  if (!shard.empty()) {
    std::string error;
    if (!JsonValidator::Validate(shard, &error)) {
      std::fprintf(stderr, "FATAL: BENCH_shard.json invalid: %s\n",
                   error.c_str());
      return 1;
    }
    json.AddRaw("shard", shard);
  }

  // And bench_wal's durable-commit latency and session-open costs.
  std::string wal = ReadFileOrEmpty("BENCH_wal.json");
  if (!wal.empty()) {
    std::string error;
    if (!JsonValidator::Validate(wal, &error)) {
      std::fprintf(stderr, "FATAL: BENCH_wal.json invalid: %s\n",
                   error.c_str());
      return 1;
    }
    json.AddRaw("wal", wal);
  }

  // Schema gate: the merged file must parse and carry the current schema
  // version; CI fails on drift before any plotting script sees it.
  std::string rendered = json.Render();
  std::string error;
  if (!JsonValidator::Validate(rendered, &error)) {
    std::fprintf(stderr, "FATAL: merged JSON invalid: %s\n", error.c_str());
    return 1;
  }
  std::string version_field =
      "\"schema_version\": " + std::to_string(kBenchJsonSchemaVersion);
  if (rendered.find(version_field) == std::string::npos) {
    std::fprintf(stderr, "FATAL: merged JSON missing %s\n",
                 version_field.c_str());
    return 1;
  }
  CheckOk(json.WriteFile(out_path), "write merged json");
  std::printf("[bench_paper] %d benches merged into %s (schema_version=%d)\n",
              ran, out_path.c_str(), kBenchJsonSchemaVersion);
  return 0;
}

// ---------------------------------------------------------------------------
// --compare: regression gate against a prior BENCH_paper.json.

/// Minimal JSON value tree for reading BENCH_paper.json back. Only the
/// shapes BenchJson/TableToJson emit are needed; anything else is a parse
/// error.
struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> fields;   // kObject

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  static bool Parse(const std::string& text, JsonValue* out) {
    JsonParser p(text);
    if (!p.Value(out)) return false;
    p.SkipWs();
    return p.pos_ == text.size();
  }

 private:
  explicit JsonParser(const std::string& text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Eat(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool String(std::string* out) {
    if (!Eat('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      char esc = text_[pos_++];
      switch (esc) {
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u':
          // Bench cells are ASCII; keep a placeholder rather than decoding.
          if (pos_ + 4 > text_.size()) return false;
          pos_ += 4;
          out->push_back('?');
          break;
        default: out->push_back(esc); break;
      }
    }
    return false;
  }
  bool Value(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') {
      out->kind = JsonValue::kObject;
      ++pos_;
      if (Eat('}')) return true;
      while (true) {
        std::string key;
        SkipWs();
        if (!String(&key)) return false;
        if (!Eat(':')) return false;
        JsonValue v;
        if (!Value(&v)) return false;
        out->fields.emplace_back(std::move(key), std::move(v));
        if (Eat('}')) return true;
        if (!Eat(',')) return false;
      }
    }
    if (c == '[') {
      out->kind = JsonValue::kArray;
      ++pos_;
      if (Eat(']')) return true;
      while (true) {
        JsonValue v;
        if (!Value(&v)) return false;
        out->items.push_back(std::move(v));
        if (Eat(']')) return true;
        if (!Eat(',')) return false;
      }
    }
    if (c == '"') {
      out->kind = JsonValue::kString;
      return String(&out->string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    char* end = nullptr;
    out->number = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return false;
    out->kind = JsonValue::kNumber;
    pos_ = static_cast<size_t>(end - text_.c_str());
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

/// Parses a FormatUs cell ("123 us", "1.23 ms", "4.56 s") back to micros.
bool ParseTimeCell(const std::string& cell, int64_t* us) {
  char* end = nullptr;
  double v = std::strtod(cell.c_str(), &end);
  if (end == cell.c_str()) return false;
  std::string unit = end;
  while (!unit.empty() && unit.front() == ' ') unit.erase(unit.begin());
  if (unit == "us") {
    *us = static_cast<int64_t>(v);
  } else if (unit == "ms") {
    *us = static_cast<int64_t>(v * 1e3);
  } else if (unit == "s") {
    *us = static_cast<int64_t>(v * 1e6);
  } else {
    return false;
  }
  return true;
}

/// bench name -> its csv tables, read out of a merged BENCH_paper.json.
bool ExtractBenchTables(const std::string& json_text,
                        std::map<std::string, std::vector<CsvTable>>* out,
                        std::string* error) {
  JsonValue root;
  if (!JsonParser::Parse(json_text, &root) ||
      root.kind != JsonValue::kObject) {
    *error = "not a JSON object";
    return false;
  }
  const JsonValue* benches = root.Find("benches");
  if (benches == nullptr || benches->kind != JsonValue::kArray) {
    *error = "missing \"benches\" array";
    return false;
  }
  for (const JsonValue& entry : benches->items) {
    const JsonValue* name = entry.Find("bench");
    const JsonValue* tables = entry.Find("tables");
    if (name == nullptr || name->kind != JsonValue::kString ||
        tables == nullptr || tables->kind != JsonValue::kArray) {
      *error = "malformed bench entry";
      return false;
    }
    std::vector<CsvTable>& dst = (*out)[name->string];
    for (const JsonValue& t : tables->items) {
      CsvTable table;
      const JsonValue* headers = t.Find("headers");
      const JsonValue* rows = t.Find("rows");
      if (headers == nullptr || rows == nullptr) {
        *error = "malformed table in " + name->string;
        return false;
      }
      for (const JsonValue& h : headers->items) table.headers.push_back(h.string);
      for (const JsonValue& r : rows->items) {
        std::vector<std::string> cells;
        for (const JsonValue& c : r.items) cells.push_back(c.string);
        table.rows.push_back(std::move(cells));
      }
      dst.push_back(std::move(table));
    }
  }
  return true;
}

/// Identity of a row across runs: every cell that is not a timing. Sweep
/// parameters, labels, and counts key the row; timed cells are what we
/// compare. Duplicate keys get an occurrence suffix.
std::string RowKey(const std::vector<std::string>& cells) {
  std::string key;
  int64_t us;
  for (const std::string& cell : cells) {
    if (ParseTimeCell(cell, &us)) continue;
    key += cell;
    key += '|';
  }
  return key;
}

/// Diffs `new_path` (just written by this run) against `old_path`. Returns
/// the number of cells that regressed past both gates; 25% relative AND
/// `floor_us` absolute, so micro-jitter on sub-millisecond cells never
/// trips the gate.
int CompareSuites(const std::string& old_path, const std::string& new_path,
                  int64_t floor_us) {
  const std::string old_text = ReadFileOrEmpty(old_path);
  if (old_text.empty()) {
    std::fprintf(stderr, "FATAL: --compare %s: unreadable or empty\n",
                 old_path.c_str());
    return 1;
  }
  const std::string new_text = ReadFileOrEmpty(new_path);
  std::map<std::string, std::vector<CsvTable>> old_suite, new_suite;
  std::string error;
  if (!ExtractBenchTables(old_text, &old_suite, &error)) {
    std::fprintf(stderr, "FATAL: --compare %s: %s\n", old_path.c_str(),
                 error.c_str());
    return 1;
  }
  if (!ExtractBenchTables(new_text, &new_suite, &error)) {
    std::fprintf(stderr, "FATAL: %s: %s\n", new_path.c_str(), error.c_str());
    return 1;
  }

  int regressions = 0;
  int compared = 0;
  std::printf("\n[bench_paper] comparing against %s "
              "(gate: >25%% slower and >%lld us)\n",
              old_path.c_str(), static_cast<long long>(floor_us));
  for (const auto& [bench, new_tables] : new_suite) {
    auto old_it = old_suite.find(bench);
    if (old_it == old_suite.end()) continue;  // new bench: nothing to diff
    const std::vector<CsvTable>& old_tables = old_it->second;
    for (size_t t = 0; t < new_tables.size() && t < old_tables.size(); ++t) {
      // Index old rows by their non-time cells (occurrence-disambiguated).
      std::map<std::string, const std::vector<std::string>*> old_rows;
      std::map<std::string, int> seen;
      for (const auto& row : old_tables[t].rows) {
        std::string key = RowKey(row) + "#" + std::to_string(seen[RowKey(row)]++);
        old_rows[key] = &row;
      }
      seen.clear();
      for (const auto& row : new_tables[t].rows) {
        std::string key = RowKey(row) + "#" + std::to_string(seen[RowKey(row)]++);
        auto match = old_rows.find(key);
        if (match == old_rows.end()) continue;  // new sweep point
        const std::vector<std::string>& old_row = *match->second;
        for (size_t c = 0; c < row.size() && c < old_row.size(); ++c) {
          int64_t old_us, new_us;
          if (!ParseTimeCell(old_row[c], &old_us) ||
              !ParseTimeCell(row[c], &new_us)) {
            continue;
          }
          ++compared;
          const bool slow = new_us > old_us + old_us / 4 &&
                            new_us - old_us > floor_us;
          if (slow) {
            ++regressions;
            const std::string col =
                c < new_tables[t].headers.size() ? new_tables[t].headers[c]
                                                 : std::to_string(c);
            std::fprintf(stderr,
                         "REGRESSION: %s table %zu [%s] %s: %s -> %s\n",
                         bench.c_str(), t, RowKey(row).c_str(), col.c_str(),
                         old_row[c].c_str(), row[c].c_str());
          }
        }
      }
    }
  }
  std::printf("[bench_paper] compared %d timed cell(s): %d regression(s)\n",
              compared, regressions);
  if (compared == 0) {
    std::fprintf(stderr,
                 "FATAL: --compare matched no timed cells; baseline stale?\n");
    return 1;
  }
  return regressions > 0 ? 1 : 0;
}

}  // namespace
}  // namespace dkb::bench

int main(int argc, char** argv) {
  dkb::bench::ParseBenchArgs(argc, argv);
  std::string out_path = "BENCH_paper.json";
  std::string compare_path;
  int64_t compare_floor_us = 50000;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--compare" && i + 1 < argc) {
      compare_path = argv[++i];
    } else if (arg == "--compare-floor-us" && i + 1 < argc) {
      compare_floor_us = std::atoll(argv[++i]);
    }
  }
  int rc = dkb::bench::RunSuite(argv[0], out_path);
  if (rc != 0) return rc;
  if (!compare_path.empty()) {
    return dkb::bench::CompareSuites(compare_path, out_path,
                                     compare_floor_us);
  }
  return 0;
}
