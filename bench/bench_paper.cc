// Aggregate paper-suite runner: executes every bench_fig* / bench_table*
// binary (plus the concurrency bench), captures their machine-readable
// "  csv," echo blocks, and merges everything into one BENCH_paper.json.
//
// CI runs `bench_paper --smoke` on every push: each child bench shrinks its
// sweeps under --smoke, so the whole suite finishes in seconds and acts as
// a perf-smoke + schema-drift gate rather than a measurement. Without
// --smoke this produces the full paper-scale result file.
//
//   bench_paper [--smoke] [--out BENCH_paper.json]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/str_util.h"

namespace dkb::bench {
namespace {

/// The paper suite in paper order (Figures 7-15, Tables 4/5/8), then the
/// concurrency bench whose BENCH_parallel.json is folded into the merged
/// file. Keep in sync with bench/CMakeLists.txt.
const char* const kPaperBenches[] = {
    "bench_fig07_extract",
    "bench_fig08_extract_rrs",
    "bench_fig09_dict_read",
    "bench_fig10_dict_read_prs",
    "bench_table4_compile_breakdown",
    "bench_fig11_relevant_facts",
    "bench_fig12_naive_vs_seminaive",
    "bench_table5_lfp_breakdown",
    "bench_fig13_magic_crossover",
    "bench_fig14_magic_components",
    "bench_fig15_update",
    "bench_table8_update_breakdown",
    "bench_concurrency",
};

struct CsvTable {
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;
};

std::vector<std::string> SplitCsvLine(const std::string& line) {
  // TablePrinter's echo format: "  csv,cell,cell,...". Cells never contain
  // commas (they are numbers, units, and identifiers).
  std::vector<std::string> cells;
  std::string rest = line.substr(std::strlen("  csv,"));
  size_t start = 0;
  while (true) {
    size_t comma = rest.find(',', start);
    if (comma == std::string::npos) {
      cells.push_back(rest.substr(start));
      break;
    }
    cells.push_back(rest.substr(start, comma - start));
    start = comma + 1;
  }
  return cells;
}

/// Extracts the csv echo blocks from a bench's stdout. Consecutive csv
/// lines form one table: first line headers, the rest rows.
std::vector<CsvTable> ParseCsvBlocks(const std::string& output) {
  std::vector<CsvTable> tables;
  bool in_block = false;
  size_t pos = 0;
  while (pos <= output.size()) {
    size_t eol = output.find('\n', pos);
    std::string line = output.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    if (line.rfind("  csv,", 0) == 0) {
      if (!in_block) {
        tables.emplace_back();
        tables.back().headers = SplitCsvLine(line);
        in_block = true;
      } else {
        tables.back().rows.push_back(SplitCsvLine(line));
      }
    } else {
      in_block = false;
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return tables;
}

std::string TableToJson(const CsvTable& table) {
  std::string out = "{\"headers\": [";
  for (size_t i = 0; i < table.headers.size(); ++i) {
    out += (i ? ", " : "") + ("\"" + JsonEscape(table.headers[i]) + "\"");
  }
  out += "], \"rows\": [";
  for (size_t r = 0; r < table.rows.size(); ++r) {
    out += r ? ", [" : "[";
    for (size_t c = 0; c < table.rows[r].size(); ++c) {
      out += (c ? ", " : "") + ("\"" + JsonEscape(table.rows[r][c]) + "\"");
    }
    out += "]";
  }
  out += "]}";
  return out;
}

/// Runs one child bench via popen, returns false on non-zero exit.
bool RunChild(const std::string& command, std::string* output) {
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) {
    std::fprintf(stderr, "FATAL: popen(%s) failed\n", command.c_str());
    return false;
  }
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) {
    output->append(buf, n);
  }
  int rc = pclose(pipe);
  return rc == 0;
}

std::string ReadFileOrEmpty(const std::string& path) {
  FILE* in = std::fopen(path.c_str(), "r");
  if (in == nullptr) return "";
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) text.append(buf, n);
  std::fclose(in);
  return text;
}

int RunSuite(const std::string& self_path, const std::string& out_path) {
  // Children live next to this binary.
  std::string bin_dir = ".";
  size_t slash = self_path.find_last_of('/');
  if (slash != std::string::npos) bin_dir = self_path.substr(0, slash);

  std::string benches_json = "[";
  int ran = 0;
  for (const char* name : kPaperBenches) {
    std::string command = bin_dir + "/" + name;
    if (SmokeMode()) command += " --smoke";
    command += " 2>&1";
    std::printf("[bench_paper] running %s ...\n", name);
    std::fflush(stdout);
    std::string output;
    if (!RunChild(command, &output)) {
      std::fprintf(stderr, "FATAL: %s failed; output follows\n%s\n", name,
                   output.c_str());
      return 1;
    }
    std::vector<CsvTable> tables = ParseCsvBlocks(output);
    if (tables.empty() && std::string(name) != "bench_concurrency") {
      // Every table bench must echo at least one csv block — an empty
      // result means the output format drifted and plots would go dark.
      std::fprintf(stderr, "FATAL: %s emitted no '  csv,' blocks\n", name);
      return 1;
    }
    std::string entry = "{\"bench\": \"" + JsonEscape(name) + "\", ";
    entry += "\"tables\": [";
    for (size_t t = 0; t < tables.size(); ++t) {
      entry += (t ? ", " : "") + TableToJson(tables[t]);
    }
    entry += "]}";
    benches_json += (ran ? ", " : "") + entry;
    ++ran;
  }
  benches_json += "]";

  BenchJson json("paper");
  json.Add("smoke", SmokeMode());
  json.Add("benches_run", static_cast<int64_t>(ran));
  json.AddRaw("benches", benches_json);

  // bench_concurrency writes BENCH_parallel.json into the working
  // directory; fold it in so one artifact carries the whole suite.
  std::string parallel = ReadFileOrEmpty("BENCH_parallel.json");
  if (!parallel.empty()) {
    std::string error;
    if (!JsonValidator::Validate(parallel, &error)) {
      std::fprintf(stderr, "FATAL: BENCH_parallel.json invalid: %s\n",
                   error.c_str());
      return 1;
    }
    json.AddRaw("parallel", parallel);
  }

  // Schema gate: the merged file must parse and carry the current schema
  // version; CI fails on drift before any plotting script sees it.
  std::string rendered = json.Render();
  std::string error;
  if (!JsonValidator::Validate(rendered, &error)) {
    std::fprintf(stderr, "FATAL: merged JSON invalid: %s\n", error.c_str());
    return 1;
  }
  std::string version_field =
      "\"schema_version\": " + std::to_string(kBenchJsonSchemaVersion);
  if (rendered.find(version_field) == std::string::npos) {
    std::fprintf(stderr, "FATAL: merged JSON missing %s\n",
                 version_field.c_str());
    return 1;
  }
  CheckOk(json.WriteFile(out_path), "write merged json");
  std::printf("[bench_paper] %d benches merged into %s (schema_version=%d)\n",
              ran, out_path.c_str(), kBenchJsonSchemaVersion);
  return 0;
}

}  // namespace
}  // namespace dkb::bench

int main(int argc, char** argv) {
  dkb::bench::ParseBenchArgs(argc, argv);
  std::string out_path = "BENCH_paper.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  return dkb::bench::RunSuite(argv[0], out_path);
}
