// Test 8 / Figure 15: Stored-DKB update time t_u versus the total number of
// stored rules R_s, with and without compiled rule-storage structures.

#include "bench_setup.h"

namespace dkb::bench {
namespace {

/// Average time of one single-rule update, measured over a batch (source-
/// only updates are sub-microsecond individually).
double AvgSingleRuleUpdateUs(bool compiled, int rs) {
  StoredRuleBaseFixture fx =
      MakeStoredRuleBase(rs, /*relevant_rules=*/3, /*rules_per_pred=*/1,
                         compiled);
  const int kBatch = Reps(40, 5);
  // Pre-define the base predicates outside the timed region.
  for (int i = 0; i < kBatch; ++i) {
    CheckOk(fx.tb->DefineBase("b_upd" + std::to_string(i),
                              {DataType::kVarchar, DataType::kVarchar}),
            "DefineBase");
  }
  int64_t total_us = 0;
  for (int i = 0; i < kBatch; ++i) {
    std::string pred = "upd" + std::to_string(i);
    CheckOk(fx.tb->AddRule(pred + "(X,Y) :- b_" + pred + "(X,Y)."),
            "AddRule");
    // Phase timings from the update report, not an external stopwatch.
    auto stats = Unwrap(fx.tb->UpdateStoredDkb(), "UpdateStoredDkb");
    total_us += stats.total_us();
    fx.tb->ClearWorkspace();
  }
  return static_cast<double>(total_us) / kBatch;
}

void Run() {
  Banner("Test 8 / Figure 15 - t_u vs R_s, with/without compiled storage",
         "SIGMOD'88 D/KB testbed, Section 5.3.2 Test 8, Figure 15",
         "updates are roughly an order of magnitude faster without compiled "
         "rule storage; t_u is insensitive to R_s in both modes");

  TablePrinter table({"R_s", "t_u_compiled_us", "t_u_source_only_us",
                      "ratio"});
  for (int rs : Sweep({9, 25, 50, 100, 189, 400})) {
    double tc = AvgSingleRuleUpdateUs(/*compiled=*/true, rs);
    double ts = AvgSingleRuleUpdateUs(/*compiled=*/false, rs);
    table.AddRow({std::to_string(rs), FormatF(tc, 1), FormatF(ts, 1),
                  FormatF(tc / std::max(0.01, ts), 1)});
  }
  table.Print();
}

}  // namespace
}  // namespace dkb::bench

int main(int argc, char** argv) {
  dkb::bench::ParseBenchArgs(argc, argv);
  dkb::bench::Run();
  return 0;
}
