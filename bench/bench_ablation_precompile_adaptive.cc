// Ablations for the paper's conclusions #3 and #4:
//  * precompiled queries amortize compilation for repeated goals, at the
//    price of invalidation bookkeeping on updates;
//  * the dynamic optimization decision ("switch magic on for low
//    selectivity, off for others") tracks the better of the two static
//    policies across the selectivity range.

#include "bench_setup.h"
#include "common/timer.h"

namespace dkb::bench {
namespace {

void RunPrecompile() {
  Banner("Ablation - precompiled queries (conclusion #3)",
         "SIGMOD'88 D/KB testbed, Conclusions, item 3",
         "precompilation pays for frequently occurring queries with large "
         "R_rs; updates pay an invalidation cost");

  TablePrinter table({"R_rs", "t_first_total", "t_cached_total",
                      "compile_saved", "speedup"});
  for (int rrs : {1, 7, 20, 40}) {
    StoredRuleBaseFixture fx = MakeStoredRuleBase(200, rrs);
    datalog::Atom goal;
    goal.predicate = fx.rulebase.query_pred;
    goal.args = {datalog::Term::Constant(Value("k")),
                 datalog::Term::Variable("W")};
    testbed::QueryOptions opts =
        testbed::QueryOptions::SemiNaive().WithCache();
    auto first = Unwrap(fx.tb->Query(goal, opts), "first query");
    int64_t t_first = first.report.compile.total_us() + first.report.exec.t_total_us;
    int64_t t_cached = MedianMicros(9, [&]() {
      auto outcome = Unwrap(fx.tb->Query(goal, opts), "cached query");
      return outcome.report.compile.total_us() + outcome.report.exec.t_total_us;
    });
    table.AddRow({std::to_string(rrs), FormatUs(t_first),
                  FormatUs(t_cached), FormatUs(first.report.compile.total_us()),
                  FormatF(static_cast<double>(t_first) /
                              std::max<int64_t>(1, t_cached),
                          2)});
  }
  table.Print();
}

void RunAdaptive() {
  Banner("Ablation - dynamic magic-sets decision (conclusion #4)",
         "SIGMOD'88 D/KB testbed, Conclusions, item 4 / Section 4.2 step 5",
         "the adaptive policy should track the better static policy on both "
         "sides of the selectivity crossover");

  const int kDepth = 10;
  const int kReps = 3;
  // Unindexed EDB: the configuration where always-on magic actually loses
  // at high selectivity (see bench_fig13).
  auto tb = MakeAncestorTree(kDepth, /*index_edb=*/false);
  const double dtot = static_cast<double>(workload::SubtreeSize(kDepth, 0));

  TablePrinter table({"level", "selectivity", "t_off", "t_on", "t_adaptive",
                      "adaptive_chose_magic"});
  for (int level : {0, 1, 2, 4, 6, 8}) {
    datalog::Atom goal = TreeAncestorGoal(LeftmostAtLevel(level));
    auto timed = [&](bool magic, bool adaptive, bool* chose) {
      testbed::QueryOptions opts =
          adaptive ? testbed::QueryOptions::Adaptive()
          : magic  ? testbed::QueryOptions::Magic()
                   : testbed::QueryOptions::SemiNaive();
      return MedianMicros(kReps, [&]() {
        auto outcome = Unwrap(tb->Query(goal, opts), "query");
        if (chose != nullptr) *chose = outcome.report.compile.magic_applied;
        // Include compilation: the adaptive estimate is a compile-time cost.
        return outcome.report.compile.total_us() + outcome.report.exec.t_total_us;
      });
    };
    bool chose = false;
    int64_t t_off = timed(false, false, nullptr);
    int64_t t_on = timed(true, false, nullptr);
    int64_t t_adaptive = timed(false, true, &chose);
    double sel = workload::SubtreeSize(kDepth, level) / dtot;
    table.AddRow({std::to_string(level), FormatPct(sel), FormatUs(t_off),
                  FormatUs(t_on), FormatUs(t_adaptive),
                  chose ? "yes" : "no"});
  }
  table.Print();
}

}  // namespace
}  // namespace dkb::bench

int main() {
  dkb::bench::RunPrecompile();
  dkb::bench::RunAdaptive();
  return 0;
}
