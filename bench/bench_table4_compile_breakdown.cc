// Test 3 / Table 4: relative contributions of the D/KB query compilation
// steps as R_rs grows.

#include "bench_setup.h"

namespace dkb::bench {
namespace {

void Run() {
  Banner("Test 3 / Table 4 - compilation time breakdown",
         "SIGMOD'88 D/KB testbed, Section 5.3.1.1 Test 3, Table 4",
         "the t_extract share grows sharply with R_rs (25% -> 67% in the "
         "paper as R_rs goes 1 -> 20)");

  const int kRs = SmokeSize(200, 100);
  const std::vector<int> kRrs = Sweep({1, 7, 20});
  const int kReps = Reps(15);

  TablePrinter table({"R_rs", "t_setup", "t_extract", "t_read", "t_eol",
                      "t_sem", "t_gen", "t_comp", "total",
                      "extract_share"});
  for (int rrs : kRrs) {
    StoredRuleBaseFixture fx = MakeStoredRuleBase(kRs, rrs);
    datalog::Atom goal;
    goal.predicate = fx.rulebase.query_pred;
    goal.args = {datalog::Term::Constant(Value("k")),
                 datalog::Term::Variable("W")};
    // Median the whole breakdown by picking the run with median total.
    std::vector<km::CompilationStats> runs;
    for (int i = 0; i < kReps; ++i) {
      km::CompilationStats stats;
      testbed::QueryOptions opts;
      Unwrap(fx.tb->CompileOnly(goal, opts, &stats), "CompileOnly");
      runs.push_back(stats);
    }
    std::sort(runs.begin(), runs.end(),
              [](const km::CompilationStats& a, const km::CompilationStats& b) {
                return a.total_us() < b.total_us();
              });
    const km::CompilationStats& s = runs[runs.size() / 2];
    table.AddRow({std::to_string(rrs), FormatUs(s.t_setup_us),
                  FormatUs(s.t_extract_us), FormatUs(s.t_read_us),
                  FormatUs(s.t_eol_us), FormatUs(s.t_sem_us),
                  FormatUs(s.t_gen_us), FormatUs(s.t_comp_us),
                  FormatUs(s.total_us()),
                  FormatPct(static_cast<double>(s.t_extract_us) /
                            std::max<int64_t>(1, s.total_us()))});
  }
  table.Print();
}

}  // namespace
}  // namespace dkb::bench

int main(int argc, char** argv) {
  dkb::bench::ParseBenchArgs(argc, argv);
  dkb::bench::Run();
  return 0;
}
