// google-benchmark microbenchmarks for the relational engine primitives the
// testbed leans on: inserts, scans, index probes, joins, set operations,
// and SQL parsing (the per-statement overhead of the embedded-SQL
// interface).

#include <benchmark/benchmark.h>

#include "rdbms/database.h"
#include "sql/parser.h"
#include "workload/data_gen.h"

namespace dkb {
namespace {

std::unique_ptr<Database> MakeParentDb(int depth, bool indexed) {
  auto db = std::make_unique<Database>();
  Status s =
      db->Execute("CREATE TABLE parent (par VARCHAR, child VARCHAR)").status();
  if (indexed) {
    s = db->Execute("CREATE INDEX par_ix ON parent (par)").status();
  }
  auto tree = workload::MakeFullBinaryTrees(1, depth);
  Table* table = &(*db->catalog().GetSource("parent"))->shard(0);
  for (Tuple& t : tree.ToTuples()) table->InsertUnchecked(std::move(t));
  (void)s;
  return db;
}

void BM_Insert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    benchmark::DoNotOptimize(
        db.Execute("CREATE TABLE t (a VARCHAR, b VARCHAR)"));
    Table* table = &(*db.catalog().GetSource("t"))->shard(0);
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      table->InsertUnchecked({Value("k" + std::to_string(i)), Value("v")});
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Insert)->Arg(1000)->Arg(10000);

void BM_SeqScanCount(benchmark::State& state) {
  auto db = MakeParentDb(11, /*indexed=*/false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->QueryCount("SELECT COUNT(*) FROM parent"));
  }
}
BENCHMARK(BM_SeqScanCount);

void BM_IndexProbe(benchmark::State& state) {
  auto db = MakeParentDb(11, /*indexed=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db->QueryRows("SELECT * FROM parent WHERE par = 't0_77'"));
  }
}
BENCHMARK(BM_IndexProbe);

void BM_SelfJoinHash(benchmark::State& state) {
  auto db = MakeParentDb(static_cast<int>(state.range(0)),
                         /*indexed=*/false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->QueryRows(
        "SELECT p1.par, p2.child FROM parent p1, parent p2 "
        "WHERE p1.child = p2.par"));
  }
}
BENCHMARK(BM_SelfJoinHash)->Arg(8)->Arg(10)->Arg(12);

void BM_SelfJoinIndexed(benchmark::State& state) {
  auto db = MakeParentDb(static_cast<int>(state.range(0)),
                         /*indexed=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->QueryRows(
        "SELECT p1.par, p2.child FROM parent p1, parent p2 "
        "WHERE p1.child = p2.par"));
  }
}
BENCHMARK(BM_SelfJoinIndexed)->Arg(8)->Arg(10)->Arg(12);

void BM_ExceptSetDifference(benchmark::State& state) {
  auto db = MakeParentDb(11, /*indexed=*/false);
  Status s = db->ExecuteAll(
      "CREATE TABLE half (par VARCHAR, child VARCHAR);"
      "INSERT INTO half SELECT * FROM parent WHERE par < 't0_4'");
  (void)s;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->QueryRows(
        "(SELECT * FROM parent) EXCEPT (SELECT * FROM half)"));
  }
}
BENCHMARK(BM_ExceptSetDifference);

void BM_ParseSelect(benchmark::State& state) {
  const std::string sql =
      "SELECT DISTINCT r0.c0, r1.c1 FROM edb_parent r0, idb_anc r1 "
      "WHERE r1.c0 = r0.c1 AND r0.c0 = 'john'";
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::ParseStatement(sql));
  }
}
BENCHMARK(BM_ParseSelect);

void BM_InsertSelectRoundTrip(benchmark::State& state) {
  auto db = MakeParentDb(10, /*indexed=*/false);
  Status s = db->Execute("CREATE TABLE sink (par VARCHAR, child VARCHAR)")
                 .status();
  (void)s;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Execute("DELETE FROM sink"));
    benchmark::DoNotOptimize(
        db->Execute("INSERT INTO sink SELECT * FROM parent"));
  }
}
BENCHMARK(BM_InsertSelectRoundTrip);

}  // namespace
}  // namespace dkb

BENCHMARK_MAIN();
