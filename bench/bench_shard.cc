// Sharded data plane: the Figure 12 / Figure 13 semi-naive workloads at
// roughly 10x the paper's data size (depth-13 tree, ~16k parent edges,
// vs the paper's depth-9 ~1k), run at shards=1 and shards=4. On a
// multi-core host the shard x morsel grid should put scans, hash-join
// builds, and per-shard LFP delta maintenance on all cores; shards=1 is
// the guard that the redesigned ScanSource path costs nothing when the
// layout is classic.
//
// Writes BENCH_shard.json (folded into BENCH_paper.json under "shard").

#include <cstdio>
#include <string>
#include <vector>

#include "bench_setup.h"
#include "common/thread_pool.h"

namespace dkb::bench {
namespace {

std::unique_ptr<testbed::Testbed> MakeShardedTree(int depth, size_t shards) {
  testbed::TestbedOptions options;
  options.stored.index_edb_first_column = true;
  options.WithShards(shards);
  auto tb = Unwrap(testbed::Testbed::Create(options), "Testbed::Create");
  CheckOk(tb->Consult(workload::AncestorRules()), "Consult");
  CheckOk(tb->DefineBase("parent", {DataType::kVarchar, DataType::kVarchar}),
          "DefineBase");
  auto tree = workload::MakeFullBinaryTrees(1, depth);
  CheckOk(tb->AddFacts("parent", tree.ToTuples()), "AddFacts");
  return tb;
}

void Run() {
  Banner("Sharded data plane - fig12/fig13 workloads, shards=1 vs shards=4",
         "SIGMOD'88 D/KB testbed, Tests 5/7 rerun on the sharded storage "
         "layout at 10x the paper's data size",
         "shards=4 wins on multi-core hosts (shard-parallel scans and LFP "
         "deltas); shards=1 matches the classic unsharded path");

  const int kDepth = SmokeSize(13, 6);
  const int kReps = Reps(3, 1);
  auto tb1 = MakeShardedTree(kDepth, 1);
  auto tb4 = MakeShardedTree(kDepth, 4);

  std::string results_json = "[";
  int cells = 0;
  double speedup_sum = 0;

  auto run_cell = [&](const char* figure, int level,
                      const testbed::QueryOptions& opts,
                      TablePrinter* table) {
    datalog::Atom goal = TreeAncestorGoal(LeftmostAtLevel(level));
    int64_t t1 = MedianMicros(kReps, [&]() {
      return Unwrap(tb1->Query(goal, opts), "shards=1").report.exec.t_total_us;
    });
    int64_t t4 = MedianMicros(kReps, [&]() {
      return Unwrap(tb4->Query(goal, opts), "shards=4").report.exec.t_total_us;
    });
    const double speedup = static_cast<double>(t1) / static_cast<double>(t4);
    table->AddRow({figure, std::to_string(level), FormatUs(t1), FormatUs(t4),
                   FormatF(speedup, 2)});
    results_json += std::string(cells ? ", " : "") + "{\"figure\": \"" +
                    figure + "\", \"level\": " + std::to_string(level) +
                    ", \"us_shards1\": " + std::to_string(t1) +
                    ", \"us_shards4\": " + std::to_string(t4) +
                    ", \"speedup\": " + FormatF(speedup, 4) + "}";
    speedup_sum += speedup;
    ++cells;
  };

  TablePrinter table(
      {"figure", "level", "t_e_shards1", "t_e_shards4", "speedup_4x"});
  // Figure 12's axis: semi-naive t_e across query-root levels.
  for (int level : Sweep({0, 2, 4})) {
    run_cell("fig12_seminaive", level, testbed::QueryOptions::SemiNaive(),
             &table);
  }
  // Figure 13's axis: the same sweep with the magic rewrite on.
  for (int level : Sweep({0, 3})) {
    run_cell("fig13_magic", level, testbed::QueryOptions::Magic(), &table);
  }
  table.Print();
  results_json += "]";

  const size_t pool = GlobalThreadPool().num_threads();
  std::printf(
      "\npool_threads=%zu; shard parallelism needs >= 2 pool workers - on "
      "smaller hosts both columns run the serial per-shard path\n",
      pool);

  BenchJson json("shard");
  json.Add("workload",
           "ancestor full binary tree depth " + std::to_string(kDepth));
  json.Add("reps", static_cast<int64_t>(kReps));
  json.Add("cells", static_cast<int64_t>(cells));
  json.Add("speedup_avg", cells > 0 ? speedup_sum / cells : 0.0);
  json.AddRaw("results", results_json);
  CheckOk(json.WriteFile("BENCH_shard.json"), "write BENCH_shard.json");
}

}  // namespace
}  // namespace dkb::bench

int main(int argc, char** argv) {
  dkb::bench::ParseBenchArgs(argc, argv);
  dkb::bench::Run();
  return 0;
}
