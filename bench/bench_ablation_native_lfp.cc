// Ablation for the paper's conclusion #6: augmenting the DBMS with a native
// LFP operator (no SQL round trips, pointer-swapped deltas, early-exit
// termination checks) versus driving the DBMS with embedded-SQL loops.

#include "bench_setup.h"

namespace dkb::bench {
namespace {

void Run() {
  Banner("Ablation - SQL-loop LFP vs native in-engine LFP operator",
         "SIGMOD'88 D/KB testbed, Conclusion #6",
         "the native LFP operator eliminates table-copy and set-difference "
         "overheads; the gap widens with relation size");

  const int kReps = 3;
  TablePrinter table({"tree_depth", "parent_tuples", "t_seminaive_sql",
                      "t_native_lfp", "t_native_tc", "native_speedup",
                      "tc_speedup", "sql_temp_share"});
  for (int depth : {7, 8, 9, 10, 11}) {
    auto tb = MakeAncestorTree(depth);
    datalog::Atom goal = TreeAncestorGoal(0);

    testbed::QueryOptions sql = testbed::QueryOptions::SemiNaive();
    testbed::QueryOptions native =
        testbed::QueryOptions::SemiNaive().WithStrategy(
            lfp::LfpStrategy::kNative);
    testbed::QueryOptions tc =
        testbed::QueryOptions::SemiNaive().WithStrategy(
            lfp::LfpStrategy::kNativeTc);

    lfp::ExecutionStats sql_stats;
    int64_t t_sql = MedianMicros(kReps, [&]() {
      auto outcome = Unwrap(tb->Query(goal, sql), "sql query");
      sql_stats = outcome.report.exec;
      return outcome.report.exec.t_total_us;
    });
    int64_t t_native = MedianMicros(kReps, [&]() {
      return Unwrap(tb->Query(goal, native), "native query").report.exec.t_total_us;
    });
    int64_t t_tc = MedianMicros(kReps, [&]() {
      return Unwrap(tb->Query(goal, tc), "tc query").report.exec.t_total_us;
    });
    double temp_share =
        static_cast<double>(sql_stats.t_temp_us) /
        std::max<int64_t>(1, sql_stats.t_temp_us + sql_stats.t_rhs_us +
                                 sql_stats.t_term_us);
    table.AddRow({std::to_string(depth),
                  std::to_string((1 << depth) - 2), FormatUs(t_sql),
                  FormatUs(t_native), FormatUs(t_tc),
                  FormatF(static_cast<double>(t_sql) / t_native, 2),
                  FormatF(static_cast<double>(t_sql) / t_tc, 2),
                  FormatPct(temp_share)});
  }
  table.Print();
}

}  // namespace
}  // namespace dkb::bench

int main() {
  dkb::bench::Run();
  return 0;
}
