// Network layer characterization: round-trip latency and pipelined
// throughput of the binary wire protocol (dkb_server + RemoteClient).
// Not a paper figure: the 1988 testbed was a single-process system; this
// bench characterizes the network extension the same way bench_concurrency
// characterizes the in-process one. Emits BENCH_net.json (folded into
// BENCH_paper.json by bench_paper).
//
//   bench_net [--smoke] [--connect host:port] [--trace]
//             [--connections N] [--pipeline D] [--batch B] [--windows W]
//
// Without --connect an in-process dkb::net::Server on a loopback ephemeral
// port serves the run, so the bench is self-contained; with --connect it
// drives an already-running dkb_server (CI does this in the release job).
//
// Workloads (all on bench-owned bn* predicates, so pointing the bench at a
// long-lived server does not disturb other clients' predicates):
//   rtt_seminaive     sequential Query round trips, semi-naive, cold cache
//   rtt_magic         same goals under the generalized magic sets rewrite
//   update_interleaved  AddFacts (writer lock) interleaved with queries
//   sustain_pipelined  the headline: 512 concurrent connections (32 under
//                      --smoke), each keeping a window of pipelined query
//                      batches in flight
//   sustain_untraced / sustain_traced
//                      (--trace only) the pipelined sustain over the
//                      recursive closure goal, without and with every query
//                      sampled — the server builds and ships net.*-wrapped
//                      span trees; the qps delta is the trace-propagation
//                      overhead (target < 3%)

#include <sys/resource.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "client/remote_client.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "net/server.h"
#include "testbed/testbed.h"

namespace dkb::bench {
namespace {

struct NetCli {
  std::string connect;  // empty = spawn an in-process server
  int connections = 0;  // 0 = workload default
  int pipeline = 0;
  int batch = 0;
  int windows = 0;
  bool trace = false;  // also measure span-tree propagation overhead
};

NetCli g_cli;

int SustainConnections() {
  if (g_cli.connections > 0) return g_cli.connections;
  return SmokeSize(512, 32);
}
int PipelineDepth() {
  if (g_cli.pipeline > 0) return g_cli.pipeline;
  return SmokeSize(8, 4);
}
int BatchSize() {
  if (g_cli.batch > 0) return g_cli.batch;
  return SmokeSize(4, 2);
}
int Windows() {
  if (g_cli.windows > 0) return g_cli.windows;
  return SmokeSize(4, 2);
}

/// See tools/dkb_server.cc: hundreds of client fds need headroom over the
/// usual 1024 soft limit.
void RaiseFdLimit(rlim_t want) {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return;
  if (lim.rlim_cur >= want) return;
  rlimit raised = lim;
  raised.rlim_cur = want < lim.rlim_max ? want : lim.rlim_max;
  setrlimit(RLIMIT_NOFILE, &raised);
}

std::unique_ptr<RemoteClient> MustConnect(const std::string& target) {
  return Unwrap(RemoteClient::Connect(target), "RemoteClient::Connect");
}

/// Chain bn0 -> bn1 -> ... with the recursive closure rule, on names no
/// other workload uses.
void LoadFixture(const std::string& target, int chain) {
  auto client = MustConnect(target);
  std::string program;
  program += "bnanc(X, Y) :- bnpar(X, Y).\n";
  program += "bnanc(X, Y) :- bnpar(X, Z), bnanc(Z, Y).\n";
  for (int i = 0; i < chain; ++i) {
    program += "bnpar(bn" + std::to_string(i) + ", bn" +
               std::to_string(i + 1) + ").\n";
  }
  CheckOk(client->Consult(program), "consult bench fixture");
  CheckOk(client->DefineBase("bnupd", {DataType::kVarchar, DataType::kVarchar}),
          "DefineBase bnupd");
}

/// Latency summary of one workload, ready for the table and the JSON.
struct WorkloadStats {
  std::string name;
  int connections = 0;
  int64_t requests = 0;
  // Heap-held: Histogram's atomics make it immovable, and workloads
  // are returned by value.
  std::shared_ptr<metrics::Histogram> latency =
      std::make_shared<metrics::Histogram>();
  double qps = 0.0;

  std::string Json() const {
    std::string out = "{\"workload\": \"" + JsonEscape(name) + "\"";
    out += ", \"connections\": " + std::to_string(connections);
    out += ", \"requests\": " + std::to_string(requests);
    out += ", \"qps\": " + FormatF(qps, 2);
    out += ", \"latency_us\": {\"count\": " + std::to_string(latency->count());
    out += ", \"mean\": " + FormatF(latency->mean(), 1);
    out += ", \"max\": " + std::to_string(latency->max());
    out += ", \"quantiles\": [";
    const double qs[] = {0.25, 0.5, 0.75, 0.9, 0.99, 0.999};
    for (size_t i = 0; i < sizeof(qs) / sizeof(qs[0]); ++i) {
      if (i > 0) out += ", ";
      out += "{\"q\": " + FormatF(qs[i], 3) +
             ", \"le_us\": " + std::to_string(latency->ApproxQuantile(qs[i])) +
             "}";
    }
    out += "]}}";
    return out;
  }
};

/// Runs `body(conn_index, client)` on `connections` threads, one fresh
/// RemoteClient each, and returns the wall time of the whole fan-out.
template <typename F>
int64_t FanOut(const std::string& target, int connections, F&& body) {
  // Connect up front (serially — the handshakes are cheap) so the timed
  // region measures steady-state traffic, not connection setup.
  std::vector<std::unique_ptr<RemoteClient>> clients;
  clients.reserve(connections);
  for (int c = 0; c < connections; ++c) clients.push_back(MustConnect(target));
  std::atomic<int> failures{0};
  WallTimer timer;
  std::vector<std::thread> workers;
  workers.reserve(connections);
  for (int c = 0; c < connections; ++c) {
    workers.emplace_back([&, c]() {
      if (!body(c, clients[c].get())) failures.fetch_add(1);
    });
  }
  for (auto& w : workers) w.join();
  int64_t us = timer.ElapsedMicros();
  if (failures.load() > 0) {
    std::fprintf(stderr, "FATAL: %d connection worker(s) failed\n",
                 failures.load());
    std::exit(1);
  }
  return us;
}

/// Sequential round trips: one Query at a time per connection, cold plan
/// cache, so each sample is wire overhead + a real compile/execute.
WorkloadStats RunRtt(const std::string& target, const std::string& name,
                     const testbed::QueryOptions& options) {
  WorkloadStats stats;
  stats.name = name;
  stats.connections = SmokeSize(8, 4);
  const int reps = Reps(50, 5);
  const std::string goal = "bnanc(bn0, W)";
  int64_t wall_us = FanOut(target, stats.connections, [&](int, RemoteClient* c) {
    for (int i = 0; i < reps; ++i) {
      WallTimer t;
      auto rs = c->Query(goal, options, net::kReportNone);
      if (!rs.ok()) return false;
      stats.latency->Observe(t.ElapsedMicros());
    }
    return true;
  });
  stats.requests = static_cast<int64_t>(stats.connections) * reps;
  stats.qps = static_cast<double>(stats.requests) * 1e6 / wall_us;
  return stats;
}

/// AddFacts (testbed writer lock) interleaved with a query on every
/// connection: measures how mutations behave under connection concurrency.
WorkloadStats RunUpdateInterleaved(const std::string& target) {
  WorkloadStats stats;
  stats.name = "update_interleaved";
  stats.connections = SmokeSize(8, 2);
  const int reps = Reps(25, 3);
  auto options = testbed::QueryOptions::SemiNaive().WithCache();
  int64_t wall_us =
      FanOut(target, stats.connections, [&](int conn, RemoteClient* c) {
        for (int i = 0; i < reps; ++i) {
          std::string key =
              "u" + std::to_string(conn) + "_" + std::to_string(i);
          WallTimer t;
          if (!c->AddFacts("bnupd", {{Value(key), Value("v")}}).ok()) {
            return false;
          }
          auto rs = c->Query("bnanc(bn0, W)", options, net::kReportNone);
          if (!rs.ok()) return false;
          stats.latency->Observe(t.ElapsedMicros());
        }
        return true;
      });
  // One AddFacts + one Query per rep.
  stats.requests = static_cast<int64_t>(stats.connections) * reps * 2;
  stats.qps = static_cast<double>(stats.requests) * 1e6 / wall_us;
  return stats;
}

/// The headline sustain: every connection keeps `PipelineDepth()` query
/// batches in flight (SendQueryBatch without waiting, then collect), for
/// `Windows()` rounds. Latency samples are whole-window round trips.
/// With `collect_trace` on, every query is sampled: the server builds the
/// net.*-wrapped span tree and ships it back in each response — the
/// traced/untraced qps delta is the --trace overhead row.
WorkloadStats RunSustainPipelined(const std::string& target,
                                  const std::string& name,
                                  const std::string& goal,
                                  bool collect_trace) {
  WorkloadStats stats;
  stats.name = name;
  stats.connections = SustainConnections();
  const int depth = PipelineDepth();
  const int batch = BatchSize();
  const int windows = Windows();
  auto options = testbed::QueryOptions::SemiNaive().WithCache();
  options.collect_trace = collect_trace;
  std::vector<std::string> goals;
  for (int b = 0; b < batch; ++b) goals.push_back(goal);
  int64_t wall_us = FanOut(target, stats.connections, [&](int, RemoteClient* c) {
    for (int w = 0; w < windows; ++w) {
      WallTimer t;
      std::vector<uint32_t> in_flight;
      in_flight.reserve(depth);
      for (int d = 0; d < depth; ++d) {
        auto id = c->SendQueryBatch(goals, options, net::kReportNone);
        if (!id.ok()) return false;
        in_flight.push_back(*id);
      }
      for (uint32_t id : in_flight) {
        auto sets = c->ReceiveResultSets(id);
        if (!sets.ok() || sets->size() != goals.size()) return false;
        // Traced runs must actually be paying for span trees, or the
        // overhead number would be a lie.
        if (collect_trace && sets->front().trace == nullptr) return false;
      }
      stats.latency->Observe(t.ElapsedMicros());
    }
    return true;
  });
  stats.requests =
      static_cast<int64_t>(stats.connections) * windows * depth * batch;
  stats.qps = static_cast<double>(stats.requests) * 1e6 / wall_us;
  return stats;
}

void Run() {
  Banner("Network - wire round trips and pipelined connection sustain",
         "extension beyond the single-user SIGMOD'88 testbed",
         "pipelining amortizes round trips; hundreds of connections sustain "
         "concurrent pipelined batches without errors");

  RaiseFdLimit(8192);

  // Self-contained by default: an in-process server on an ephemeral
  // loopback port. --connect points the same traffic at a real dkb_server.
  std::unique_ptr<testbed::Testbed> own_tb;
  net::Server own_server;
  std::string target = g_cli.connect;
  if (target.empty()) {
    own_tb = Unwrap(testbed::Testbed::Create(), "Testbed::Create");
    net::ServerOptions server_options;
    server_options.port = 0;  // ephemeral
    CheckOk(own_server.Start(own_tb.get(), server_options), "Server::Start");
    target = "127.0.0.1:" + std::to_string(own_server.port());
    std::printf("  in-process dkb_server on %s\n", target.c_str());
  } else {
    std::printf("  driving external server %s\n", target.c_str());
  }

  LoadFixture(target, SmokeSize(48, 12));

  std::vector<WorkloadStats> workloads;
  workloads.push_back(
      RunRtt(target, "rtt_seminaive", testbed::QueryOptions::SemiNaive()));
  workloads.push_back(
      RunRtt(target, "rtt_magic", testbed::QueryOptions::Magic()));
  workloads.push_back(RunUpdateInterleaved(target));
  // A non-recursive single-predicate goal: the sustain row measures how the
  // wire, the per-connection sessions, and the pipelining scale with
  // connection count — engine-heavy recursion is the rtt_* rows' job.
  workloads.push_back(RunSustainPipelined(target, "sustain_pipelined",
                                          "bnpar(bn0, W)",
                                          /*collect_trace=*/false));
  // --trace: the same pipelined sustain over the recursive closure, once
  // untraced and once with every query sampled (span trees built, wrapped
  // in net.* spans, and shipped back). The recursive goal is the honest
  // denominator — trace overhead is per-span work amortized over real
  // engine execution; against the wire-only bnpar goal (a ~10 us cached
  // lookup) any tracing at all swamps the query. The pair runs in
  // alternating rounds and each arm keeps its best round: max-qps is the
  // estimator least polluted by unrelated load, and a single back-to-back
  // pair at smoke scale swings tens of percent either way run to run.
  // Calibration: sequential round-trip probes put the true per-query cost
  // at ~10-20 us (one span-tree copy + wire encode + client decode) — a
  // few percent of the ~0.5 ms recursive goal. On single-core CI boxes
  // the sustained number reads higher than that floor because dozens of
  // oversubscribed threads amplify the traced path's extra allocations.
  double trace_overhead_pct = 0.0;
  if (g_cli.trace) {
    const std::string traced_goal = "bnanc(bn0, W)";
    constexpr int kTraceRounds = 3;
    WorkloadStats best_untraced;
    WorkloadStats best_traced;
    for (int round = 0; round < kTraceRounds; ++round) {
      WorkloadStats untraced = RunSustainPipelined(
          target, "sustain_untraced", traced_goal, /*collect_trace=*/false);
      WorkloadStats traced = RunSustainPipelined(
          target, "sustain_traced", traced_goal, /*collect_trace=*/true);
      if (untraced.qps > best_untraced.qps) best_untraced = untraced;
      if (traced.qps > best_traced.qps) best_traced = traced;
    }
    workloads.push_back(best_untraced);
    workloads.push_back(best_traced);
    if (best_traced.qps > 0.0) {
      trace_overhead_pct = (best_untraced.qps / best_traced.qps - 1.0) * 100.0;
    }
  }

  TablePrinter table({"workload", "conns", "requests", "p50", "p99", "max",
                      "mean", "qps"});
  for (const WorkloadStats& w : workloads) {
    table.AddRow({w.name, std::to_string(w.connections),
                  std::to_string(w.requests),
                  FormatUs(w.latency->ApproxQuantile(0.5)),
                  FormatUs(w.latency->ApproxQuantile(0.99)),
                  FormatUs(w.latency->max()),
                  FormatUs(static_cast<int64_t>(w.latency->mean())),
                  FormatF(w.qps, 1)});
  }
  table.Print();
  std::printf(
      "\n  (sustain_pipelined: %d connections x %d windows x %d batches "
      "x %d goals)\n",
      SustainConnections(), Windows(), PipelineDepth(), BatchSize());
  if (g_cli.trace) {
    std::printf("  trace propagation overhead: %s%% (target < 3%%)\n",
                FormatF(trace_overhead_pct, 2).c_str());
  }

  BenchJson json("net");
  json.Add("smoke", SmokeMode());
  json.Add("external_server", !g_cli.connect.empty());
  json.Add("sustain_connections", static_cast<int64_t>(SustainConnections()));
  json.Add("pipeline_depth", static_cast<int64_t>(PipelineDepth()));
  json.Add("batch_size", static_cast<int64_t>(BatchSize()));
  if (g_cli.trace) {
    json.AddRaw("trace_overhead",
                "{\"overhead_pct\": " + FormatF(trace_overhead_pct, 2) +
                    ", \"target_pct\": 3.0, \"rounds\": 3"
                    ", \"hardware_concurrency\": " +
                    std::to_string(std::thread::hardware_concurrency()) + "}");
  }
  std::string rows = "[";
  for (size_t i = 0; i < workloads.size(); ++i) {
    if (i > 0) rows += ", ";
    rows += workloads[i].Json();
  }
  rows += "]";
  json.AddRaw("workloads", rows);
  CheckOk(json.WriteFile("BENCH_net.json"), "write BENCH_net.json");
  std::printf("  wrote BENCH_net.json\n");

  std::string error;
  if (!JsonValidator::Validate(json.Render(), &error)) {
    std::fprintf(stderr, "FATAL: BENCH_net.json does not parse: %s\n",
                 error.c_str());
    std::exit(1);
  }
  if (SmokeMode()) std::printf("  smoke: BENCH JSON validated\n");

  if (own_tb != nullptr) own_server.Stop();
}

}  // namespace
}  // namespace dkb::bench

int main(int argc, char** argv) {
  dkb::bench::ParseBenchArgs(argc, argv);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_int = [&](int* out) {
      if (i + 1 < argc) *out = std::atoi(argv[++i]);
    };
    if (arg == "--connect" && i + 1 < argc) {
      dkb::bench::g_cli.connect = argv[++i];
    } else if (arg == "--connections") {
      next_int(&dkb::bench::g_cli.connections);
    } else if (arg == "--pipeline") {
      next_int(&dkb::bench::g_cli.pipeline);
    } else if (arg == "--batch") {
      next_int(&dkb::bench::g_cli.batch);
    } else if (arg == "--windows") {
      next_int(&dkb::bench::g_cli.windows);
    } else if (arg == "--trace") {
      dkb::bench::g_cli.trace = true;
    }
  }
  dkb::bench::Run();
  return 0;
}
