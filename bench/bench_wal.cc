// Durability & MVCC bench: what the WAL costs and what epoch sessions buy.
//
// Part 1 — commit latency: one-row AddFacts through four durability
// configurations (no WAL; WAL with group-commit fsync; WAL with per-commit
// fsync; WAL without fsync). The fsync rows measure the physical floor of
// a durable commit; the no-WAL row is the in-memory baseline.
//
// Part 2 — session open: OpenSession + first query against a small and a
// ~50x larger database. Epoch-pinned sessions are O(metadata), so the two
// columns should be close; before this design the open cloned the whole
// database and scaled with its size.
//
// Writes BENCH_wal.json (folded into BENCH_paper.json under "wal").

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_setup.h"
#include "testbed/session.h"

namespace dkb::bench {
namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A scratch wal_dir wiped of any previous run's log and checkpoint.
std::string FreshWalDir(const std::string& tag) {
  std::string dir = "/tmp/dkb_bench_wal_" + tag + "_" +
                    std::to_string(static_cast<long long>(::getpid()));
  std::remove((dir + "/dkb.wal").c_str());
  std::remove((dir + "/dkb.ckpt").c_str());
  return dir;
}

std::unique_ptr<testbed::Testbed> MakeWriteTarget(
    const testbed::TestbedOptions& base) {
  auto tb = Unwrap(testbed::Testbed::Create(base), "Testbed::Create");
  CheckOk(tb->DefineBase("parent", {DataType::kVarchar, DataType::kVarchar}),
          "DefineBase");
  return tb;
}

void RunCommitLatency(BenchJson* json) {
  struct Config {
    const char* name;
    bool wal;
    bool fsync;
    bool group_commit;
  };
  const Config kConfigs[] = {
      {"no_wal", false, false, false},
      {"wal_group_commit", true, true, true},
      {"wal_fsync_each", true, true, false},
      {"wal_no_fsync", true, false, false},
  };
  const int kReps = Reps(200, 10);

  TablePrinter table({"config", "commit_p50", "commits"});
  std::string results = "[";
  int n = 0;
  for (const Config& cfg : kConfigs) {
    testbed::TestbedOptions options;
    if (cfg.wal) {
      options.WithWalDir(FreshWalDir(cfg.name))
          .WithWalFsync(cfg.fsync)
          .WithWalGroupCommit(cfg.group_commit);
    }
    auto tb = MakeWriteTarget(options);
    int seq = 0;
    int64_t p50 = MedianMicros(kReps, [&]() {
      std::string who = "n" + std::to_string(seq++);
      int64_t start = NowUs();
      CheckOk(tb->AddFacts("parent", {{Value(who), Value("c")}}), "AddFacts");
      return NowUs() - start;
    });
    table.AddRow({cfg.name, FormatUs(p50), std::to_string(kReps)});
    results += std::string(n ? ", " : "") + "{\"config\": \"" + cfg.name +
               "\", \"commit_p50_us\": " + std::to_string(p50) + "}";
    ++n;
  }
  table.Print();
  results += "]";
  json->AddRaw("commit_latency", results);
}

void RunSessionOpen(BenchJson* json) {
  const int kSmallDepth = 6;                    // 62 edges
  const int kBigDepth = SmokeSize(12, 7);       // 4094 edges full-size
  const int kReps = Reps(25, 5);

  auto small = MakeAncestorTree(kSmallDepth);
  auto big = MakeAncestorTree(kBigDepth);

  auto open_cost = [&](testbed::Testbed* tb) {
    return MedianMicros(kReps, [&]() {
      int64_t start = NowUs();
      auto session = Unwrap(tb->OpenSession(), "OpenSession");
      Unwrap(session->Query(TreeAncestorGoal(0),
                            testbed::QueryOptions::SemiNaive()),
             "session query");
      return NowUs() - start;
    });
  };
  // Queries scale with data, so time the open (pin + metadata restore)
  // separately from open+query.
  auto open_only_cost = [&](testbed::Testbed* tb) {
    return MedianMicros(kReps, [&]() {
      int64_t start = NowUs();
      auto session = Unwrap(tb->OpenSession(), "OpenSession");
      (void)session;
      return NowUs() - start;
    });
  };

  int64_t small_open = open_only_cost(small.get());
  int64_t big_open = open_only_cost(big.get());
  int64_t small_oq = open_cost(small.get());
  int64_t big_oq = open_cost(big.get());

  TablePrinter table({"database", "edges", "open_p50", "open_plus_query"});
  table.AddRow({"small", std::to_string((1 << kSmallDepth) - 2),
                FormatUs(small_open), FormatUs(small_oq)});
  table.AddRow({"big", std::to_string((1 << kBigDepth) - 2),
                FormatUs(big_open), FormatUs(big_oq)});
  table.Print();
  const double ratio = small_open > 0
                           ? static_cast<double>(big_open) / small_open
                           : 0.0;
  std::printf("\nopen ratio big/small = %s (O(1) open => ~1.0; O(database) "
              "would track the ~%dx data ratio)\n",
              FormatF(ratio, 2).c_str(),
              ((1 << kBigDepth) - 2) / ((1 << kSmallDepth) - 2));

  json->AddRaw(
      "session_open",
      std::string("{\"small_edges\": ") +
          std::to_string((1 << kSmallDepth) - 2) +
          ", \"big_edges\": " + std::to_string((1 << kBigDepth) - 2) +
          ", \"small_open_us\": " + std::to_string(small_open) +
          ", \"big_open_us\": " + std::to_string(big_open) +
          ", \"small_open_query_us\": " + std::to_string(small_oq) +
          ", \"big_open_query_us\": " + std::to_string(big_oq) +
          ", \"open_ratio\": " + FormatF(ratio, 4) + "}");
}

void Run() {
  Banner("WAL & MVCC - durable commit latency and epoch session open",
         "durability extension to the SIGMOD'88 testbed: WAL group commit, "
         "columnar checkpoints, epoch-pinned sessions",
         "group commit amortizes the fsync floor across writers; session "
         "open is O(metadata), independent of database size");

  BenchJson json("wal");
  RunCommitLatency(&json);
  std::printf("\n");
  RunSessionOpen(&json);
  CheckOk(json.WriteFile("BENCH_wal.json"), "write BENCH_wal.json");
}

}  // namespace
}  // namespace dkb::bench

int main(int argc, char** argv) {
  dkb::bench::ParseBenchArgs(argc, argv);
  dkb::bench::Run();
  return 0;
}
