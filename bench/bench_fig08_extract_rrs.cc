// Test 1 / Figure 8: relevant-rule extraction time t_extract as a function
// of the number of relevant rules R_rs at a fixed rule-base size.

#include "bench_setup.h"

namespace dkb::bench {
namespace {

void Run() {
  Banner("Test 1 / Figure 8 - t_extract vs R_rs",
         "SIGMOD'88 D/KB testbed, Section 5.3.1.1 Test 1, Figure 8",
         "t_extract grows with R_rs (extraction-join selectivity), roughly "
         "linearly");

  const int kRs = SmokeSize(400, 100);
  const std::vector<int> kRrs = Sweep({1, 2, 5, 10, 20, 40, 80});
  const int kReps = Reps(15);

  TablePrinter table({"R_rs", "t_extract", "rules_extracted"});
  for (int rrs : kRrs) {
    StoredRuleBaseFixture fx = MakeStoredRuleBase(kRs, rrs);
    datalog::Atom goal;
    goal.predicate = fx.rulebase.query_pred;
    goal.args = {datalog::Term::Constant(Value("k")),
                 datalog::Term::Variable("W")};
    km::CompilationStats last;
    int64_t median = MedianMicros(kReps, [&]() {
      testbed::QueryOptions opts;
      Unwrap(fx.tb->CompileOnly(goal, opts, &last), "CompileOnly");
      return last.t_extract_us;
    });
    table.AddRow({std::to_string(rrs), FormatUs(median),
                  std::to_string(last.rules_extracted_stored)});
  }
  table.Print();
}

}  // namespace
}  // namespace dkb::bench

int main(int argc, char** argv) {
  dkb::bench::ParseBenchArgs(argc, argv);
  dkb::bench::Run();
  return 0;
}
