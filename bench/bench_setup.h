#ifndef DKB_BENCH_BENCH_SETUP_H_
#define DKB_BENCH_BENCH_SETUP_H_

#include <memory>

#include "bench_util.h"
#include "testbed/testbed.h"
#include "workload/data_gen.h"
#include "workload/queries.h"
#include "workload/rule_gen.h"

namespace dkb::bench {

/// A testbed whose Stored DKB holds a committed synthetic rule base
/// (controls the paper's R_s / R_rs / P_s / P_rs parameters).
struct StoredRuleBaseFixture {
  std::unique_ptr<testbed::Testbed> tb;
  workload::GeneratedRuleBase rulebase;
};

inline StoredRuleBaseFixture MakeStoredRuleBase(int total_rules,
                                                int relevant_rules,
                                                int rules_per_pred = 1,
                                                bool compiled_storage = true) {
  StoredRuleBaseFixture fx;
  testbed::TestbedOptions options;
  options.stored.compiled_rule_storage = compiled_storage;
  fx.tb = Unwrap(testbed::Testbed::Create(options), "Testbed::Create");
  fx.rulebase =
      workload::MakeRuleBase(total_rules, relevant_rules, rules_per_pred);
  for (const std::string& base : fx.rulebase.base_preds) {
    CheckOk(fx.tb->DefineBase(base, {DataType::kVarchar, DataType::kVarchar}),
            "DefineBase");
  }
  for (const datalog::Rule& rule : fx.rulebase.rules) {
    CheckOk(fx.tb->workspace().AddRule(rule), "AddRule");
  }
  Unwrap(fx.tb->UpdateStoredDkb(), "UpdateStoredDkb");
  fx.tb->ClearWorkspace();
  return fx;
}

/// A testbed loaded with the ancestor program and a full binary tree of
/// `depth` in the parent relation (the paper's Test 4-7 workload).
/// `index_edb` controls whether the parent relation gets an index on its
/// first column (the paper's DBMS behaviour varies by configuration).
inline std::unique_ptr<testbed::Testbed> MakeAncestorTree(
    int depth, bool index_edb = true) {
  testbed::TestbedOptions options;
  options.stored.index_edb_first_column = index_edb;
  auto tb = Unwrap(testbed::Testbed::Create(options), "Testbed::Create");
  CheckOk(tb->Consult(workload::AncestorRules()), "Consult");
  CheckOk(tb->DefineBase("parent", {DataType::kVarchar, DataType::kVarchar}),
          "DefineBase");
  auto tree = workload::MakeFullBinaryTrees(1, depth);
  CheckOk(tb->AddFacts("parent", tree.ToTuples()), "AddFacts");
  return tb;
}

/// Goal "?- ancestor('<node>', W)." for tree node `index` of tree 0.
inline datalog::Atom TreeAncestorGoal(int64_t index) {
  return workload::AncestorQuery(workload::TreeNodeName(0, index));
}

/// Leftmost node index at `level` of a binary tree (heap order): 2^level-1.
inline int64_t LeftmostAtLevel(int level) {
  return (int64_t{1} << level) - 1;
}

}  // namespace dkb::bench

#endif  // DKB_BENCH_BENCH_SETUP_H_
