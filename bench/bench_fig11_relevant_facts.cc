// Test 4 / Figure 11: query execution time t_e as a function of the
// relevant-fact fraction D_rel / D_tot, varied two ways (no optimization,
// semi-naive evaluation).

#include "bench_setup.h"
#include "common/timer.h"

namespace dkb::bench {
namespace {

int64_t TimeQuery(testbed::Testbed* tb, const datalog::Atom& goal,
                  testbed::QueryOptions opts, int reps,
                  size_t* answers = nullptr) {
  return MedianMicros(reps, [&]() {
    auto outcome = Unwrap(tb->Query(goal, opts), "Query");
    if (answers != nullptr) *answers = outcome.result.rows.size();
    return outcome.report.exec.t_total_us;
  });
}

void Run() {
  Banner("Test 4 / Figure 11 - t_e vs D_rel/D_tot",
         "SIGMOD'88 D/KB testbed, Section 5.3.1.2 Test 4, Figure 11",
         "without magic, t_e is insensitive to D_rel when D_tot is fixed "
         "(full closure is computed regardless) and grows with D_tot when "
         "D_rel is fixed");

  testbed::QueryOptions opts;  // semi-naive, no magic
  const int kReps = Reps(5);

  // Method 1: fix D_tot (a depth-10 tree), vary D_rel by rooting the query
  // at sub-trees of different levels.
  {
    const int kDepth = SmokeSize(10, 6);
    auto tb = MakeAncestorTree(kDepth);
    const double dtot =
        static_cast<double>(workload::SubtreeSize(kDepth, 0));
    TablePrinter table({"query_root_level", "D_rel/D_tot", "answers", "t_e"});
    for (int level : Sweep({0, 1, 2, 4, 6, 8})) {
      size_t answers = 0;
      int64_t t = TimeQuery(tb.get(), TreeAncestorGoal(LeftmostAtLevel(level)),
                            opts, kReps, &answers);
      double drel = static_cast<double>(workload::SubtreeSize(kDepth, level));
      table.AddRow({std::to_string(level), FormatF(drel / dtot, 4),
                    std::to_string(answers), FormatUs(t)});
    }
    std::printf("Method 1: D_tot fixed (depth-%d tree, %lld tuples), query "
                "moves to smaller sub-trees\n\n",
                kDepth,
                static_cast<long long>(workload::SubtreeSize(kDepth, 0) - 1));
    table.Print();
  }

  // Method 2: fix D_rel (a depth-5 sub-tree) and grow the parent relation.
  {
    TablePrinter table({"tree_depth", "D_tot", "D_rel/D_tot", "t_e"});
    for (int depth : Sweep({6, 7, 8, 9, 10, 11})) {
      auto tb = MakeAncestorTree(depth);
      // Query at the leftmost node `depth-5` levels down: its sub-tree has
      // depth 5 (31 nodes) in every tree.
      int level = depth - 5;
      int64_t t = TimeQuery(tb.get(),
                            TreeAncestorGoal(LeftmostAtLevel(level)), opts,
                            kReps);
      double dtot = static_cast<double>(workload::SubtreeSize(depth, 0));
      double drel = static_cast<double>(workload::SubtreeSize(depth, level));
      table.AddRow({std::to_string(depth),
                    std::to_string(static_cast<long long>(dtot - 1)),
                    FormatF(drel / dtot, 4), FormatUs(t)});
    }
    std::printf("\nMethod 2: D_rel fixed (depth-5 sub-tree), parent relation "
                "grows\n\n");
    table.Print();
  }
}

}  // namespace
}  // namespace dkb::bench

int main(int argc, char** argv) {
  dkb::bench::ParseBenchArgs(argc, argv);
  dkb::bench::Run();
  return 0;
}
