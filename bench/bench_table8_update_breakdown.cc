// Test 9 / Table 8: breakdown of the Stored-DKB update time into its
// components for a large (R_ws = 36) and a minimal (R_ws = 1) workspace,
// against a stored rule base of R_s = 189 rules.

#include "bench_setup.h"

namespace dkb::bench {
namespace {

void RunCase(int r_ws, TablePrinter* table) {
  const int kRs = SmokeSize(189, 50);
  // The stored rule base; the workspace rules chain onto its relevant
  // family so the update extraction has real work to do.
  StoredRuleBaseFixture fx = MakeStoredRuleBase(kRs, 12);
  // Bushy workspace (short chains of 3 hanging onto the stored family),
  // keeping the composite closure near the paper's R_c = 137 scale rather
  // than the O(n^2) closure a single long chain would produce.
  for (int i = 0; i < r_ws; ++i) {
    std::string pred = "w" + std::to_string(i);
    std::string body = (i % 3 != 0 && i + 1 < r_ws)
                           ? "w" + std::to_string(i + 1)
                           : fx.rulebase.query_pred;
    CheckOk(fx.tb->AddRule(pred + "(X,Y) :- " + body + "(X,Y)."), "AddRule");
  }
  auto stats = Unwrap(fx.tb->UpdateStoredDkb(), "UpdateStoredDkb");
  double total = static_cast<double>(std::max<int64_t>(1, stats.total_us()));
  table->AddRow({std::to_string(r_ws), std::to_string(kRs),
                 std::to_string(stats.closure_edges),
                 FormatPct(stats.t_extract_us / total),
                 FormatPct(stats.t_tc_us / total),
                 FormatPct(stats.t_typecheck_us / total),
                 FormatPct(stats.t_dict_us / total),
                 FormatPct(stats.t_store_us / total),
                 FormatUs(stats.total_us())});
}

void Run() {
  Banner("Test 9 / Table 8 - update time breakdown",
         "SIGMOD'88 D/KB testbed, Section 5.3.2 Test 9, Table 8",
         "extraction of relevant rules dominates small updates (81% at "
         "R_ws=1 vs 42% at R_ws=36 in the paper); storing the source form "
         "is a small share");

  TablePrinter table({"R_ws", "R_s", "closure_edges", "extract", "tc",
                      "typecheck", "dict", "store", "total"});
  RunCase(SmokeSize(36, 6), &table);
  RunCase(1, &table);
  table.Print();
}

}  // namespace
}  // namespace dkb::bench

int main(int argc, char** argv) {
  dkb::bench::ParseBenchArgs(argc, argv);
  dkb::bench::Run();
  return 0;
}
