// Test 2 / Figure 9: data-dictionary read time t_read as a function of the
// total number of derived predicates stored, P_s, for several P_rs values.

#include "bench_setup.h"

namespace dkb::bench {
namespace {

void Run() {
  Banner("Test 2 / Figure 9 - t_read vs P_s",
         "SIGMOD'88 D/KB testbed, Section 5.3.1.1 Test 2, Figure 9",
         "t_read is insensitive to P_s (indexed dictionary relations)");

  // One rule per predicate, so P_s == R_s and P_rs == R_rs.
  const std::vector<int> kPs = Sweep({50, 100, 200, 400, 800});
  const int kPrs[] = {1, 4, 10};
  const int kReps = Reps(15);

  TablePrinter table({"P_s", "P_rs=1", "P_rs=4", "P_rs=10"});
  for (int ps : kPs) {
    std::vector<std::string> row = {std::to_string(ps)};
    for (int prs : kPrs) {
      StoredRuleBaseFixture fx = MakeStoredRuleBase(ps, prs);
      datalog::Atom goal;
      goal.predicate = fx.rulebase.query_pred;
      goal.args = {datalog::Term::Constant(Value("k")),
                   datalog::Term::Variable("W")};
      int64_t median = MedianMicros(kReps, [&]() {
        km::CompilationStats stats;
        testbed::QueryOptions opts;
        Unwrap(fx.tb->CompileOnly(goal, opts, &stats), "CompileOnly");
        return stats.t_read_us;
      });
      row.push_back(FormatUs(median));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace
}  // namespace dkb::bench

int main(int argc, char** argv) {
  dkb::bench::ParseBenchArgs(argc, argv);
  dkb::bench::Run();
  return 0;
}
