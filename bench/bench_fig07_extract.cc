// Test 1 / Figure 7: relevant-rule extraction time t_extract as a function
// of the total number of stored rules R_s, for several values of the number
// of rules relevant to the query R_rs.

#include "bench_setup.h"
#include "common/timer.h"

namespace dkb::bench {
namespace {

void Run() {
  Banner("Test 1 / Figure 7 - t_extract vs R_s",
         "SIGMOD'88 D/KB testbed, Section 5.3.1.1 Test 1, Figure 7",
         "t_extract is insensitive to R_s (indexed reachablepreds join) and "
         "increases with R_rs");

  const std::vector<int> kRs = Sweep({50, 100, 200, 400, 800});
  const int kRrs[] = {1, 7, 20};
  const int kReps = Reps(15);

  TablePrinter table({"R_s", "R_rs=1", "R_rs=7", "R_rs=20"});
  for (int rs : kRs) {
    std::vector<std::string> row = {std::to_string(rs)};
    for (int rrs : kRrs) {
      StoredRuleBaseFixture fx = MakeStoredRuleBase(rs, rrs);
      datalog::Atom goal;
      goal.predicate = fx.rulebase.query_pred;
      goal.args = {datalog::Term::Constant(Value("k")),
                   datalog::Term::Variable("W")};
      int64_t median = MedianMicros(kReps, [&]() {
        km::CompilationStats stats;
        testbed::QueryOptions opts;
        Unwrap(fx.tb->CompileOnly(goal, opts, &stats), "CompileOnly");
        return stats.t_extract_us;
      });
      row.push_back(FormatUs(median));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace
}  // namespace dkb::bench

int main(int argc, char** argv) {
  dkb::bench::ParseBenchArgs(argc, argv);
  dkb::bench::Run();
  return 0;
}
