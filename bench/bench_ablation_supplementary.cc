// Ablation for the supplementary magic sets variant (paper §2.5): the
// generalized scheme re-evaluates each rule's prefix join once in the magic
// rule and again in the modified rule; the supplementary scheme
// materializes it once. Same-generation (a 3-atom recursive body) is the
// classic case where this pays.

#include "bench_setup.h"

namespace dkb::bench {
namespace {

std::unique_ptr<testbed::Testbed> SgTestbed(int depth) {
  auto tb = Unwrap(testbed::Testbed::Create(), "create");
  CheckOk(tb->Consult(workload::SameGenerationRules()), "consult");
  auto tree = workload::MakeFullBinaryTrees(1, depth);
  std::vector<Tuple> up;
  std::vector<Tuple> down;
  for (const auto& [mgr, emp] : tree.edges) {
    up.push_back({Value(emp), Value(mgr)});
    down.push_back({Value(mgr), Value(emp)});
  }
  for (const char* pred : {"up", "down", "flat"}) {
    CheckOk(tb->DefineBase(pred, {DataType::kVarchar, DataType::kVarchar}),
            "define");
  }
  CheckOk(tb->AddFacts("up", up), "up");
  CheckOk(tb->AddFacts("down", down), "down");
  CheckOk(tb->AddFacts("flat", {{Value("t0_0"), Value("t0_0")}}), "flat");
  return tb;
}

void Run() {
  Banner("Ablation - generalized vs supplementary magic sets",
         "SIGMOD'88 D/KB testbed, Section 2.5 (strategy survey)",
         "supplementary magic trades extra materialization (sup_i tables, "
         "more statements per LFP iteration) for avoided prefix re-joins; "
         "it pays when joins are expensive (the paper's disk DBMS) and "
         "costs when per-statement overhead dominates (this in-memory "
         "engine) - the ratio should improve with depth either way");

  const int kReps = 3;
  TablePrinter table({"tree_depth", "answers", "t_plain", "t_magic",
                      "t_supplementary", "sup_vs_magic"});
  for (int depth : {5, 6, 7, 8}) {
    auto tb = SgTestbed(depth);
    // Same-generation peers of the leftmost leaf.
    std::string leaf = workload::TreeNodeName(0, (1 << (depth - 1)) - 1);
    std::string goal = "?- sg('" + leaf + "', W).";

    auto timed = [&](bool magic, bool sup, size_t* answers) {
      testbed::QueryOptions opts =
          sup   ? testbed::QueryOptions::SupplementaryMagic()
          : magic ? testbed::QueryOptions::Magic()
                  : testbed::QueryOptions::SemiNaive();
      return MedianMicros(kReps, [&]() {
        auto outcome = Unwrap(tb->Query(goal, opts), "query");
        if (answers != nullptr) *answers = outcome.result.rows.size();
        return outcome.report.exec.t_total_us;
      });
    };
    size_t answers = 0;
    int64_t t_plain = timed(false, false, &answers);
    int64_t t_magic = timed(true, false, nullptr);
    int64_t t_sup = timed(true, true, nullptr);
    table.AddRow({std::to_string(depth), std::to_string(answers),
                  FormatUs(t_plain), FormatUs(t_magic), FormatUs(t_sup),
                  FormatF(static_cast<double>(t_magic) / t_sup, 2)});
  }
  table.Print();
}

}  // namespace
}  // namespace dkb::bench

int main() {
  dkb::bench::Run();
  return 0;
}
