// Concurrent query throughput through the Session API, plus single-query
// parallel-LFP speedup. Not a paper figure: the 1988 testbed was
// single-user; this bench characterizes the concurrency extension.
// Emits BENCH_parallel.json next to the textual report.

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_setup.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "testbed/session.h"

namespace dkb::bench {
namespace {

constexpr int kTreeDepth = 7;
constexpr int kCliques = 4;
constexpr int kChainLength = 24;

/// --smoke: tiny rep counts, then validate that the emitted JSON parses
/// (CI runs this mode; plotting scripts consume the real runs).
bool g_smoke = false;

int RepsPerThread() { return g_smoke ? 2 : 10; }

/// Queries per second with `threads` sessions querying concurrently.
double MeasureQps(testbed::Testbed* tb, const datalog::Atom& goal,
                  int threads) {
  std::vector<std::unique_ptr<testbed::Session>> sessions;
  for (int t = 0; t < threads; ++t) {
    sessions.push_back(Unwrap(tb->OpenSession(), "OpenSession"));
    // Pre-clone so the measurement sees steady-state querying, not the
    // one-time snapshot copy.
    Unwrap(sessions.back()->Query(goal), "warmup query");
  }
  std::atomic<int> failures{0};
  WallTimer timer;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      for (int i = 0; i < RepsPerThread(); ++i) {
        auto r = sessions[t]->Query(goal);
        if (!r.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  int64_t us = timer.ElapsedMicros();
  if (failures.load() > 0) {
    std::fprintf(stderr, "FATAL: %d concurrent queries failed\n",
                 failures.load());
    std::exit(1);
  }
  return static_cast<double>(threads) * RepsPerThread() * 1e6 /
         static_cast<double>(us);
}

/// A program with `kCliques` mutually independent recursive cliques, so
/// the wavefront scheduler has real parallelism to exploit.
std::unique_ptr<testbed::Testbed> MakeMultiCliqueTestbed() {
  auto tb = Unwrap(testbed::Testbed::Create(), "Testbed::Create");
  std::string program;
  for (int c = 0; c < kCliques; ++c) {
    std::string anc = "anc" + std::to_string(c);
    std::string par = "par" + std::to_string(c);
    program += anc + "(X, Y) :- " + par + "(X, Y).\n";
    program += anc + "(X, Y) :- " + par + "(X, Z), " + anc + "(Z, Y).\n";
    program += "all(X, Y) :- " + anc + "(X, Y).\n";
    for (int i = 0; i < kChainLength; ++i) {
      program += par + "(n" + std::to_string(c) + "_" + std::to_string(i) +
                 ", n" + std::to_string(c) + "_" + std::to_string(i + 1) +
                 ").\n";
    }
  }
  CheckOk(tb->Consult(program), "Consult multi-clique program");
  return tb;
}

void Run() {
  Banner("Concurrency - session throughput and parallel LFP",
         "extension beyond the single-user SIGMOD'88 testbed",
         "qps scales with reader threads (hardware permitting); parallel "
         "LFP matches serial answers while overlapping independent cliques");

  unsigned hw = std::thread::hardware_concurrency();
  std::printf("  hardware threads: %u; DKB worker pool: %zu\n\n", hw,
              GlobalThreadPool().num_threads());

  auto tb = MakeAncestorTree(kTreeDepth);
  datalog::Atom goal = TreeAncestorGoal(0);

  TablePrinter table({"threads", "qps", "speedup_vs_1"});
  std::vector<std::pair<int, double>> qps_rows;
  double qps1 = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    double qps = MeasureQps(tb.get(), goal, threads);
    if (threads == 1) qps1 = qps;
    qps_rows.emplace_back(threads, qps);
    table.AddRow({std::to_string(threads), FormatF(qps, 1),
                  FormatF(qps / qps1, 2)});
  }
  table.Print();

  // Single-query parallel LFP: one program, independent cliques evaluated
  // concurrently vs in sequence.
  auto multi = MakeMultiCliqueTestbed();
  auto serial_opts = testbed::QueryOptions::SemiNaive().WithParallelism(1);
  auto parallel_opts =
      testbed::QueryOptions::SemiNaive().WithParallelism(kCliques);
  const int lfp_reps = g_smoke ? 1 : 3;
  int64_t t_serial = MedianMicros(lfp_reps, [&]() {
    return Unwrap(multi->Query("all(X, Y)", serial_opts), "serial LFP")
        .report.exec.t_total_us;
  });
  int64_t t_parallel = MedianMicros(lfp_reps, [&]() {
    return Unwrap(multi->Query("all(X, Y)", parallel_opts), "parallel LFP")
        .report.exec.t_total_us;
  });

  TablePrinter lfp({"lfp_mode", "t_e", "speedup"});
  lfp.AddRow({"serial", FormatUs(t_serial), "1.00"});
  lfp.AddRow({"parallel(" + std::to_string(kCliques) + ")",
              FormatUs(t_parallel),
              FormatF(static_cast<double>(t_serial) / t_parallel, 2)});
  lfp.Print();

  BenchJson json("concurrency");
  json.Add("workload",
           "ancestor tree depth " + std::to_string(kTreeDepth) +
               ", bound root");
  json.Add("smoke", g_smoke);
  json.Add("reps_per_thread", static_cast<int64_t>(RepsPerThread()));
  std::string qps_json = "[";
  for (size_t i = 0; i < qps_rows.size(); ++i) {
    if (i > 0) qps_json += ", ";
    qps_json += "{\"threads\": " + std::to_string(qps_rows[i].first) +
                ", \"qps\": " + FormatF(qps_rows[i].second, 2) + "}";
  }
  qps_json += "]";
  json.AddRaw("qps", qps_json);
  json.AddRaw("lfp",
              "{\"cliques\": " + std::to_string(kCliques) +
                  ", \"serial_us\": " + std::to_string(t_serial) +
                  ", \"parallel_us\": " + std::to_string(t_parallel) +
                  ", \"speedup\": " +
                  FormatF(static_cast<double>(t_serial) / t_parallel, 3) +
                  "}");
  CheckOk(json.WriteFile("BENCH_parallel.json"), "write BENCH_parallel.json");
  std::printf("\n  wrote BENCH_parallel.json\n");

  std::string error;
  if (!JsonValidator::Validate(json.Render(), &error)) {
    std::fprintf(stderr, "FATAL: BENCH_parallel.json does not parse: %s\n",
                 error.c_str());
    std::exit(1);
  }
  if (g_smoke) std::printf("  smoke: BENCH JSON validated\n");
}

}  // namespace
}  // namespace dkb::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") dkb::bench::g_smoke = true;
  }
  dkb::bench::Run();
  return 0;
}
