// Test 7 / Figure 14: with magic sets enabled, the execution splits into
// two LFP computations — the magic-rules clique (computes the relevant-fact
// set) and the modified-rules clique (computes answers against it). This
// bench times each as a function of query selectivity.

#include "bench_setup.h"
#include "magic/adornment.h"

namespace dkb::bench {
namespace {

void Run() {
  Banner("Test 7 / Figure 14 - magic vs modified rules LFP time",
         "SIGMOD'88 D/KB testbed, Section 5.3.1.2 Test 7, Figure 14",
         "the modified-rules evaluation is more selectivity-sensitive than "
         "the magic-rules evaluation (it computes D_rel-sized closures)");

  const int kDepth = SmokeSize(11, 7);
  const int kReps = Reps(3, 1);
  auto tb = MakeAncestorTree(kDepth);
  const double dtot = static_cast<double>(workload::SubtreeSize(kDepth, 0));

  TablePrinter table({"level", "selectivity", "t_magic_clique",
                      "t_modified_clique", "magic_tuples",
                      "modified_tuples"});
  for (int level : Sweep({1, 2, 3, 4, 5, 7, 9})) {
    datalog::Atom goal = TreeAncestorGoal(LeftmostAtLevel(level));
    testbed::QueryOptions opts = testbed::QueryOptions::Magic();

    int64_t t_magic = 0;
    int64_t t_modified = 0;
    int64_t n_magic = 0;
    int64_t n_modified = 0;
    MedianMicros(kReps, [&]() {
      auto outcome = Unwrap(tb->Query(goal, opts), "Query");
      t_magic = t_modified = n_magic = n_modified = 0;
      for (const lfp::NodeStats& ns : outcome.report.exec.nodes) {
        // A node's label is its predicate list; magic cliques contain only
        // magic predicates.
        bool is_magic = magic::IsMagicPredicateName(ns.label);
        if (is_magic) {
          t_magic += ns.t_us;
          n_magic += ns.tuples;
        } else {
          t_modified += ns.t_us;
          n_modified += ns.tuples;
        }
      }
      return outcome.report.exec.t_total_us;
    });
    double sel = workload::SubtreeSize(kDepth, level) / dtot;
    table.AddRow({std::to_string(level), FormatPct(sel), FormatUs(t_magic),
                  FormatUs(t_modified), std::to_string(n_magic),
                  std::to_string(n_modified)});
  }
  table.Print();
}

}  // namespace
}  // namespace dkb::bench

int main(int argc, char** argv) {
  dkb::bench::ParseBenchArgs(argc, argv);
  dkb::bench::Run();
  return 0;
}
