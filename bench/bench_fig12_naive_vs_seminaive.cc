// Test 5 / Figure 12: the impact of redundant work — naive vs semi-naive
// LFP evaluation across queries of varying relevant-fact fraction.

#include "bench_setup.h"

namespace dkb::bench {
namespace {

void Run() {
  Banner("Test 5 / Figure 12 - naive vs semi-naive t_e",
         "SIGMOD'88 D/KB testbed, Section 5.3.1.2 Test 5, Figure 12",
         "semi-naive is roughly 2.5-3x faster than naive (redundant "
         "recomputation avoided)");

  const int kDepth = SmokeSize(9, 6);
  const int kReps = Reps(5);
  auto tb = MakeAncestorTree(kDepth);
  const double dtot = static_cast<double>(workload::SubtreeSize(kDepth, 0));

  TablePrinter table({"query_root_level", "D_rel/D_tot", "t_e_naive",
                      "t_e_seminaive", "naive/seminaive"});
  for (int level : Sweep({0, 1, 2, 3, 4})) {
    datalog::Atom goal = TreeAncestorGoal(LeftmostAtLevel(level));
    testbed::QueryOptions naive = testbed::QueryOptions::Naive();
    testbed::QueryOptions semi = testbed::QueryOptions::SemiNaive();
    int64_t tn = MedianMicros(kReps, [&]() {
      return Unwrap(tb->Query(goal, naive), "naive").report.exec.t_total_us;
    });
    int64_t ts = MedianMicros(kReps, [&]() {
      return Unwrap(tb->Query(goal, semi), "semi").report.exec.t_total_us;
    });
    double drel = static_cast<double>(workload::SubtreeSize(kDepth, level));
    table.AddRow({std::to_string(level), FormatF(drel / dtot, 4),
                  FormatUs(tn), FormatUs(ts),
                  FormatF(static_cast<double>(tn) / ts, 2)});
  }
  table.Print();
}

}  // namespace
}  // namespace dkb::bench

int main(int argc, char** argv) {
  dkb::bench::ParseBenchArgs(argc, argv);
  dkb::bench::Run();
  return 0;
}
