#ifndef DKB_BENCH_BENCH_UTIL_H_
#define DKB_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/str_util.h"
#include "common/thread_pool.h"

#ifndef DKB_GIT_DESCRIBE
#define DKB_GIT_DESCRIBE "unknown"
#endif

namespace dkb::bench {

/// Schema version of BENCH_*.json files. Bump when the header or the shape
/// of bench-specific fields changes incompatibly, so cross-PR comparison
/// scripts can refuse to mix generations.
constexpr int kBenchJsonSchemaVersion = 2;

/// Process-wide smoke switch. Under --smoke every bench shrinks its sweep
/// grids and rep counts so the full paper suite (bench_paper) finishes in
/// seconds — CI runs it on every push to catch bit-rot in the bench code
/// and drift in the BENCH_*.json schema, not to measure anything.
inline bool& SmokeMode() {
  static bool smoke = false;
  return smoke;
}

/// Parses the flags shared by every bench binary (currently just --smoke).
inline void ParseBenchArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") SmokeMode() = true;
  }
}

/// Rep count: the full number when measuring, a token count under --smoke.
inline int Reps(int full, int smoke = 2) { return SmokeMode() ? smoke : full; }

/// Sweep grid: all points when measuring, the first `keep` under --smoke.
/// Smoke keeps the *small* end of each sweep, so trim-sensitive fixtures
/// (deep trees, large rule bases) never run at full scale in CI.
inline std::vector<int> Sweep(std::vector<int> points, size_t keep = 2) {
  if (SmokeMode() && points.size() > keep) points.resize(keep);
  return points;
}

/// Scale knob (tree depth, rule-base size): `full` when measuring, the
/// explicitly chosen `smoke` value under --smoke.
inline int SmokeSize(int full, int smoke) {
  return SmokeMode() ? smoke : full;
}

/// Aborts the bench with a diagnostic if `status` is not OK.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

/// Unwraps a Result<T>, aborting on error.
template <typename T>
T Unwrap(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

/// Median of `reps` runs of a timed body returning elapsed microseconds.
template <typename F>
int64_t MedianMicros(int reps, F&& body) {
  std::vector<int64_t> samples;
  samples.reserve(reps);
  for (int i = 0; i < reps; ++i) samples.push_back(body());
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Renders microseconds with adaptive units.
inline std::string FormatUs(int64_t us) {
  char buf[64];
  if (us >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.2f s", us / 1e6);
  } else if (us >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", us / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld us", static_cast<long long>(us));
  }
  return buf;
}

inline std::string FormatPct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

inline std::string FormatF(double v, int digits = 2) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

/// Column-aligned ASCII table plus machine-readable CSV echo.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%s%-*s", c ? "  " : "  ", static_cast<int>(widths[c]),
                    row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::string rule;
    for (size_t c = 0; c < headers_.size(); ++c) {
      rule += std::string(widths[c], '-') + "  ";
    }
    std::printf("  %s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row);
    // CSV echo for plotting.
    std::printf("\n  csv,");
    for (size_t c = 0; c < headers_.size(); ++c) {
      std::printf("%s%s", c ? "," : "", headers_[c].c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) {
      std::printf("  csv,");
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%s%s", c ? "," : "", row[c].c_str());
      }
      std::printf("\n");
    }
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Builds a BENCH_*.json object with a schema-versioned header identifying
/// the machine and build, so result files are comparable across PRs. All
/// string values go through JsonEscape — no hand-rolled printf JSON.
///
///   BenchJson json("concurrency");
///   json.Add("workload", "ancestor tree depth 7");
///   json.AddRaw("qps", "[{...}]");       // pre-rendered JSON value
///   CheckOk(json.WriteFile("BENCH_parallel.json"), "write json");
class BenchJson {
 public:
  explicit BenchJson(const std::string& bench_name) {
    Add("schema_version", static_cast<int64_t>(kBenchJsonSchemaVersion));
    Add("bench", bench_name);
    Add("hardware_threads",
        static_cast<int64_t>(std::thread::hardware_concurrency()));
    Add("pool_threads",
        static_cast<int64_t>(GlobalThreadPool().num_threads()));
    const char* env = std::getenv("DKB_THREADS");
    Add("dkb_threads_env", env == nullptr ? "" : env);
    Add("git_describe", DKB_GIT_DESCRIBE);
  }

  void Add(const std::string& key, const std::string& value) {
    AddRaw(key, "\"" + JsonEscape(value) + "\"");
  }
  void Add(const std::string& key, const char* value) {
    Add(key, std::string(value));
  }
  void Add(const std::string& key, int64_t value) {
    AddRaw(key, std::to_string(value));
  }
  void Add(const std::string& key, double value) {
    AddRaw(key, FormatF(value, 4));
  }
  void Add(const std::string& key, bool value) {
    AddRaw(key, value ? "true" : "false");
  }
  /// Attaches an already-rendered JSON value (object/array/number).
  void AddRaw(const std::string& key, const std::string& json) {
    fields_.emplace_back(key, json);
  }

  std::string Render() const {
    std::string out = "{\n";
    for (size_t i = 0; i < fields_.size(); ++i) {
      out += "  \"" + JsonEscape(fields_[i].first) +
             "\": " + fields_[i].second;
      out += i + 1 < fields_.size() ? ",\n" : "\n";
    }
    out += "}\n";
    return out;
  }

  Status WriteFile(const std::string& path) const {
    FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      return Status::Internal("cannot open " + path + " for writing");
    }
    std::string text = Render();
    size_t written = std::fwrite(text.data(), 1, text.size(), out);
    std::fclose(out);
    if (written != text.size()) {
      return Status::Internal("short write to " + path);
    }
    return Status::OK();
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Minimal JSON syntax checker (objects, arrays, strings with escapes,
/// numbers, booleans, null). Used by bench smoke modes to validate that the
/// BENCH_*.json they just wrote actually parses — printf-era escaping bugs
/// are caught in CI rather than by downstream plotting scripts.
class JsonValidator {
 public:
  static bool Validate(const std::string& text, std::string* error) {
    JsonValidator v(text);
    v.SkipWs();
    if (!v.Value()) {
      if (error != nullptr) {
        *error = "JSON syntax error near offset " + std::to_string(v.pos_);
      }
      return false;
    }
    v.SkipWs();
    if (v.pos_ != text.size()) {
      if (error != nullptr) {
        *error = "trailing garbage at offset " + std::to_string(v.pos_);
      }
      return false;
    }
    return true;
  }

 private:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Literal(const char* word) {
    size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }
  bool String() {
    if (!Eat('"')) return false;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) return false;
            ++pos_;
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
    }
    return false;
  }
  bool Number() {
    size_t start = pos_;
    if (Eat('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(text_[pos_ - 1]));
  }
  bool Value() {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }
  bool Object() {
    if (!Eat('{')) return false;
    SkipWs();
    if (Eat('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Eat(':')) return false;
      if (!Value()) return false;
      SkipWs();
      if (Eat('}')) return true;
      if (!Eat(',')) return false;
    }
  }
  bool Array() {
    if (!Eat('[')) return false;
    SkipWs();
    if (Eat(']')) return true;
    while (true) {
      if (!Value()) return false;
      SkipWs();
      if (Eat(']')) return true;
      if (!Eat(',')) return false;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

/// Section banner matching the paper's test numbering.
inline void Banner(const char* title, const char* paper_ref,
                   const char* expectation) {
  std::printf("\n=============================================================\n");
  std::printf("%s\n", title);
  std::printf("Paper reference: %s\n", paper_ref);
  std::printf("Paper-shape expectation: %s\n", expectation);
  std::printf("=============================================================\n\n");
}

}  // namespace dkb::bench

#endif  // DKB_BENCH_BENCH_UTIL_H_
