#ifndef DKB_BENCH_BENCH_UTIL_H_
#define DKB_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/status.h"

namespace dkb::bench {

/// Aborts the bench with a diagnostic if `status` is not OK.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

/// Unwraps a Result<T>, aborting on error.
template <typename T>
T Unwrap(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

/// Median of `reps` runs of a timed body returning elapsed microseconds.
template <typename F>
int64_t MedianMicros(int reps, F&& body) {
  std::vector<int64_t> samples;
  samples.reserve(reps);
  for (int i = 0; i < reps; ++i) samples.push_back(body());
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Renders microseconds with adaptive units.
inline std::string FormatUs(int64_t us) {
  char buf[64];
  if (us >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.2f s", us / 1e6);
  } else if (us >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", us / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld us", static_cast<long long>(us));
  }
  return buf;
}

inline std::string FormatPct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

inline std::string FormatF(double v, int digits = 2) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

/// Column-aligned ASCII table plus machine-readable CSV echo.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%s%-*s", c ? "  " : "  ", static_cast<int>(widths[c]),
                    row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::string rule;
    for (size_t c = 0; c < headers_.size(); ++c) {
      rule += std::string(widths[c], '-') + "  ";
    }
    std::printf("  %s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row);
    // CSV echo for plotting.
    std::printf("\n  csv,");
    for (size_t c = 0; c < headers_.size(); ++c) {
      std::printf("%s%s", c ? "," : "", headers_[c].c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) {
      std::printf("  csv,");
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%s%s", c ? "," : "", row[c].c_str());
      }
      std::printf("\n");
    }
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Section banner matching the paper's test numbering.
inline void Banner(const char* title, const char* paper_ref,
                   const char* expectation) {
  std::printf("\n=============================================================\n");
  std::printf("%s\n", title);
  std::printf("Paper reference: %s\n", paper_ref);
  std::printf("Paper-shape expectation: %s\n", expectation);
  std::printf("=============================================================\n\n");
}

}  // namespace dkb::bench

#endif  // DKB_BENCH_BENCH_UTIL_H_
