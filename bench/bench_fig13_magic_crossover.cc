// Test 7 / Figure 13: query execution time versus query selectivity
// (D_rel/D_tot) with and without the generalized magic sets optimization,
// for both naive and semi-naive LFP evaluation. The paper reports a
// crossover (~72% selectivity for semi-naive, ~85% for naive) beyond which
// the optimization overhead outweighs its benefit, and
// orders-of-magnitude wins at very low selectivity.

#include "bench_setup.h"

namespace dkb::bench {
namespace {

void Run() {
  Banner("Test 7 / Figure 13 - magic sets on/off vs selectivity",
         "SIGMOD'88 D/KB testbed, Section 5.3.1.2 Test 7, Figure 13",
         "without magic t_e is flat in selectivity; with magic t_e grows "
         "with selectivity; magic wins by orders of magnitude at low "
         "selectivity and loses past a high-selectivity crossover");

  auto run_series = [](int depth, bool index_edb, const char* caption) {
    const int kReps = Reps(3, 1);
    auto tb = MakeAncestorTree(depth, index_edb);
    const double dtot = static_cast<double>(workload::SubtreeSize(depth, 0));
    TablePrinter table({"level", "selectivity", "semi_plain", "semi_magic",
                        "naive_plain", "naive_magic", "semi_speedup",
                        "naive_speedup"});
    for (int level : Sweep({0, 1, 2, 3, 5, 7, 9})) {
      datalog::Atom goal = TreeAncestorGoal(LeftmostAtLevel(level));
      auto timed = [&](lfp::LfpStrategy strategy, bool magic) {
        testbed::QueryOptions opts =
            (magic ? testbed::QueryOptions::Magic()
                   : testbed::QueryOptions::SemiNaive())
                .WithStrategy(strategy);
        return MedianMicros(kReps, [&]() {
          return Unwrap(tb->Query(goal, opts), "Query").report.exec.t_total_us;
        });
      };
      int64_t sp = timed(lfp::LfpStrategy::kSemiNaive, false);
      int64_t sm = timed(lfp::LfpStrategy::kSemiNaive, true);
      int64_t np = timed(lfp::LfpStrategy::kNaive, false);
      int64_t nm = timed(lfp::LfpStrategy::kNaive, true);
      double sel = workload::SubtreeSize(depth, level) / dtot;
      table.AddRow({std::to_string(level), FormatPct(sel), FormatUs(sp),
                    FormatUs(sm), FormatUs(np), FormatUs(nm),
                    FormatF(static_cast<double>(sp) / sm, 2),
                    FormatF(static_cast<double>(np) / nm, 2)});
    }
    std::printf("%s\n\n", caption);
    table.Print();
    std::printf("\n");
  };

  run_series(SmokeSize(11, 7), /*index_edb=*/true,
             "Configuration A: indexed parent relation (depth-11 tree)");
  run_series(SmokeSize(10, 6), /*index_edb=*/false,
             "Configuration B: unindexed parent relation (depth-10 tree) - "
             "the magic LFP pays full scans per iteration, exposing the "
             "paper's high-selectivity crossover");
  std::printf(
      "speedup > 1 means the magic sets optimization wins; the crossover "
      "is where it drops below 1.\n");
}

}  // namespace
}  // namespace dkb::bench

int main(int argc, char** argv) {
  dkb::bench::ParseBenchArgs(argc, argv);
  dkb::bench::Run();
  return 0;
}
